// Simulated MPI ("smpi") — the target-program communication interface.
//
// This is the MPI subset MPI-Sim traps and models (paper §2.1), plus the
// two extensions §3 introduces for compiler-simplified programs:
//   * Comm::delay(t)      — advance the simulation clock by an analytical
//                           estimate instead of executing computation;
//   * Comm::read_param(p) — the "read w_i and broadcast" prologue call the
//                           code generator inserts (Figure 1(c)).
//
// Point-to-point follows the eager/rendezvous split of 1990s MPI
// implementations: messages up to the eager threshold are buffered and the
// sender proceeds after its send overhead; larger messages synchronize via
// an RTS/CTS handshake, so a blocking send does not complete before the
// matching receive is posted. Collectives are built from point-to-point
// binomial-tree / dissemination algorithms, so their cost emerges from the
// same network model the paper used.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "machine/compute.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "smpi/collectives.hpp"
#include "sim/engine.hpp"
#include "support/blob.hpp"
#include "support/vtime.hpp"

namespace stgsim::smpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Error in the *target program's* use of the communication interface
/// (e.g. posting a receive buffer smaller than the matched message).
/// Unlike STGSIM_CHECK's CheckError — a simulator-invariant violation that
/// prints a check banner — this is a diagnosable fault of the simulated
/// program; the harness maps it to RunStatus::kInternalError with the
/// message as the structured diagnostic.
class TargetProgramError : public std::runtime_error {
 public:
  explicit TargetProgramError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Completion info for a receive.
struct RecvStatus {
  int src = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

/// Per-rank accounting the harness reads after a run.
struct RankStats {
  VTime compute_time = 0;  ///< advance()d by kernels and delay()s
  VTime comm_time = 0;     ///< virtual time spent inside smpi calls
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t collectives = 0;
  std::uint64_t delays = 0;
  std::uint64_t bytes_sent = 0;
};

/// One user-level communication operation, as recorded by CommTrace.
struct CommEvent {
  enum class Kind : std::uint8_t {
    kSend, kRecv, kIsend, kIrecv, kWaitall, kBarrier, kBcast, kAllreduce,
    kAlltoall
  };
  Kind kind{};
  int peer = -1;  ///< destination / posted source / root (-1 where n/a)
  int tag = 0;
  std::size_t bytes = 0;

  bool operator==(const CommEvent&) const = default;
};

/// Per-rank log of every user-level communication operation. The paper's
/// correctness contract for the simplified program (§3, challenge (a)) is
/// that it performs the *same* communication as the original; the tests
/// compare CommTraces of original and simplified runs.
class CommTrace {
 public:
  explicit CommTrace(int nranks) : per_rank_(static_cast<std::size_t>(nranks)) {}

  void add(int rank, CommEvent e) {
    per_rank_[static_cast<std::size_t>(rank)].push_back(e);
  }

  const std::vector<std::vector<CommEvent>>& per_rank() const {
    return per_rank_;
  }

  /// Empty string when equal; otherwise a description of the first
  /// divergence, for test diagnostics.
  std::string diff(const CommTrace& other) const;

 private:
  std::vector<std::vector<CommEvent>> per_rank_;
};

/// State shared by every rank of a simulated world: the machine models,
/// the w_i parameter table, and aggregate statistics.
class World {
 public:
  struct Options {
    net::NetworkParams net;
    machine::ComputeParams compute;
    VTime param_read_cost = vtime_from_us(200);  ///< file read on rank 0
    CommTrace* trace = nullptr;  ///< optional user-level op recorder

    /// Optional observability sink (not owned): per-op virtual-time spans,
    /// protocol counters and the comm matrix. Never affects simulated
    /// behaviour; null disables all instrumentation.
    obs::Recorder* obs = nullptr;

    /// Deterministic fault schedule: link degradation and eager drops are
    /// applied by the network, straggler slowdowns by compute()/delay().
    /// Send/receive software overheads are intentionally *not* stretched —
    /// a straggler models a slow CPU core's effect on application work,
    /// not on the (already-parameterized) MPI library costs.
    fault::FaultPlan faults;

    /// Per-operation collective algorithm selection (part of the machine
    /// description; see smpi/collectives.hpp). kAuto picks by message
    /// size like real MPI selection tables.
    CollectiveConfig coll;

    /// Legacy ablation switch: use naive root-sequential algorithms for
    /// every collective. Mapped onto `coll` (all ops forced to kLinear)
    /// at World construction.
    bool linear_collectives = false;

    /// Test-only fault injection: widens the advertised wildcard latency
    /// floor past the network's sound bound, so regression tests can show
    /// that a floor tighter than every routed path trips the
    /// wildcard-park invariant (`stgsim check` finds the race it opens).
    /// Never set outside tests.
    VTime unsafe_floor_slack = 0;

    /// §5 of the paper proposes, as future work, replacing the detailed
    /// communication simulation with "an abstract model of the
    /// communication (based on message size, message destination, etc.)".
    /// With kAbstract, point-to-point always follows the buffered path
    /// (no rendezvous handshake simulation) and collectives complete in
    /// closed form — ceil(log2 P) latency terms plus the bandwidth term —
    /// via a single gather/release star instead of log P simulated
    /// rounds. Values transferred stay exact; timing and event counts
    /// are approximated.
    enum class CommFidelity { kDetailed, kAbstract };
    CommFidelity comm_fidelity = CommFidelity::kDetailed;
  };

  World(Options options, int nranks)
      : options_(options), network_(options.net, nranks),
        stats_(static_cast<std::size_t>(nranks)) {
    if (options_.linear_collectives) {
      options_.coll.barrier = CollAlgo::kLinear;
      options_.coll.bcast = CollAlgo::kLinear;
      options_.coll.reduce = CollAlgo::kLinear;
      options_.coll.allreduce = CollAlgo::kLinear;
      options_.coll.alltoall = CollAlgo::kLinear;
    }
    network_.set_fault_plan(options_.faults);
  }

  const Options& options() const { return options_; }
  net::Network& network() { return network_; }
  int nranks() const { return static_cast<int>(stats_.size()); }

  /// Lower bound on any message's wire latency under this world's fault
  /// plan: the network floor, raised by the product of always-on global
  /// link-degradation factors (scoped clauses cannot raise the floor).
  /// Feeds the engine's wildcard safety bound and the threaded
  /// scheduler's lookahead window; a sound *larger* floor never changes
  /// which wildcard candidate commits, so digests are unaffected.
  VTime wildcard_latency_floor() const {
    const double f = options_.faults.latency_floor_factor();
    const VTime base = network_.min_latency();
    return static_cast<VTime>(static_cast<double>(base) * f) +
           options_.unsafe_floor_slack;
  }

  void set_param(const std::string& name, double value) {
    params_[name] = value;
  }
  bool has_param(const std::string& name) const {
    return params_.contains(name);
  }
  double param(const std::string& name) const;
  const std::map<std::string, double>& params() const { return params_; }

  RankStats& stats(int rank) { return stats_[static_cast<std::size_t>(rank)]; }
  const std::vector<RankStats>& all_stats() const { return stats_; }

  /// Sum/max of per-rank stats over all ranks.
  RankStats aggregate_stats() const;

 private:
  Options options_;
  net::Network network_;
  std::map<std::string, double> params_;
  std::vector<RankStats> stats_;
};

/// Handle for an outstanding isend/irecv.
class Request {
 public:
  Request() = default;
  bool valid() const { return kind_ != Kind::kInvalid; }
  bool done() const { return done_; }

 private:
  friend class Comm;
  enum class Kind { kInvalid, kSendDone, kSendRendezvous, kRecv };

  Kind kind_ = Kind::kInvalid;
  bool done_ = false;
  int peer = kAnySource;
  int tag = kAnyTag;
  void* buf = nullptr;
  std::size_t bytes = 0;
  std::uint64_t rid = 0;  // rendezvous id (sends)
  RecvStatus* status = nullptr;
};

/// Per-rank communicator; lives on the target process's fiber stack.
class Comm {
 public:
  Comm(World& world, simk::Process& proc);
  ~Comm();

  int rank() const { return proc_.rank(); }
  int size() const { return proc_.world_size(); }
  VTime now() const { return proc_.now(); }
  World& world() { return world_; }
  simk::Process& process() { return proc_; }

  /// Charges local computation time (direct execution path).
  void compute(VTime t);

  /// MPI-Sim's delay extension: forwards the clock by an analytical
  /// estimate of eliminated computation (counted as compute time).
  void delay(VTime t);
  void delay_seconds(double s) { delay(vtime_from_sec(s)); }

  /// Reads a model parameter on rank 0 and broadcasts it (collective).
  double read_param(const std::string& name);

  // -- Point-to-point ------------------------------------------------------
  // `data` may be null: the transfer is then modeled (correct wire size and
  // timing) without carrying payload — how compiler-simplified programs
  // communicate through the shared dummy buffer.

  void send(int dst, int tag, const void* data, std::size_t bytes);
  void recv(int src, int tag, void* data, std::size_t bytes,
            RecvStatus* status = nullptr);

  Request isend(int dst, int tag, const void* data, std::size_t bytes);
  Request irecv(int src, int tag, void* data, std::size_t bytes,
                RecvStatus* status = nullptr);

  void wait(Request& req);
  void waitall(std::vector<Request>& reqs);

  /// Blocks until (at least) one incomplete request finishes; returns its
  /// index. All requests already complete is a programming error.
  std::size_t waitany(std::vector<Request>& reqs);

  /// send+recv without deadlock regardless of ordering at the peers.
  void sendrecv(int dst, int send_tag, const void* send_data,
                std::size_t send_bytes, int src, int recv_tag,
                void* recv_data, std::size_t recv_bytes,
                RecvStatus* status = nullptr);

  // -- Collectives (must be called by all ranks in the same order) ---------

  void barrier();
  void bcast(void* data, std::size_t bytes, int root);

  /// Root collects `bytes_each` from every rank into recv_all (rank-major;
  /// recv_all may be null on non-roots). Root-sequential algorithm, as
  /// MPI implementations of the period used for long messages.
  void gather(const void* send, std::size_t bytes_each, void* recv_all,
              int root);

  /// Root distributes rank-major blocks of `bytes_each` from send_all
  /// (null on non-roots) into recv.
  void scatter(const void* send_all, std::size_t bytes_each, void* recv,
               int root);
  /// Element-wise sum of n doubles into `inout` at root.
  void reduce_sum(double* inout, int n, int root);
  void allreduce_sum(double* inout, int n);
  double allreduce_sum(double value);
  void allreduce_max(double* inout, int n);

  /// Every rank sends block d of `send_all` (rank-major, `bytes_each` per
  /// block) to rank d and receives block s of `recv_all` from rank s.
  /// Buffers may be null for modeled-only transfers (correct wire sizes
  /// and timing, no payload). Pairwise-exchange by default.
  void alltoall(const void* send_all, std::size_t bytes_each, void* recv_all);

  // -- Optimistic-mode checkpoint support ----------------------------------

  /// Serializes this rank's cross-statement smpi state — the rendezvous
  /// and collective sequence counters, the RankStats accumulator, and the
  /// obs recorder shard when observability is on — into `w`. Must only be
  /// called at a quiescent boundary (no outstanding Requests): Requests
  /// are deliberately not serialized.
  void save_state(BlobWriter& w) const;
  /// Inverse of save_state; overwrites the same state from `r`.
  void restore_state(BlobReader& r);

 private:
  enum MsgKind : std::uint8_t {
    kKindEager = 0,
    kKindRts = 1,
    kKindCts = 2,
    kKindColl = 3,
  };

  /// Kind masks for data-driven MatchSpecs (bit per Message::kind).
  static constexpr std::uint8_t kMaskP2P =
      (1u << kKindEager) | (1u << kKindRts);
  static constexpr std::uint8_t kMaskCts = 1u << kKindCts;
  static constexpr std::uint8_t kMaskColl = 1u << kKindColl;

  void send_raw(int dst, MsgKind msg_kind, int tag, std::uint64_t aux,
                const void* data, std::size_t bytes, std::size_t wire_bytes,
                net::TransferKind kind = net::TransferKind::kEager);

  /// Stretched virtual duration of `t` of local work starting now (applies
  /// the fault plan's straggler factors for this rank).
  VTime stretched(VTime t) const {
    return world_.network().fault_plan().stretch_compute(rank(), now(), t);
  }
  void complete_eager_or_rts(simk::Message& m, void* data, std::size_t bytes,
                             RecvStatus* status);
  simk::Message match_recv(int src, int user_tag);

  // Collective-internal point-to-point (distinct matching space).
  void coll_send(int dst, int round, const void* data, std::size_t bytes);
  void coll_recv(int src, int round, void* data, std::size_t bytes);

  /// coll_send with an explicitly chosen arrival time (abstract mode).
  void coll_send_at(int dst, int round, const void* data, std::size_t bytes,
                    VTime arrival);

  bool abstract_comm() const {
    return world_.options().comm_fidelity ==
           World::Options::CommFidelity::kAbstract;
  }

  const CollectiveConfig& coll_cfg() const { return world_.options().coll; }
  CollAlgo coll_algo(CollOp op, CollAlgo configured, std::size_t bytes) const {
    return resolve_coll_algo(op, configured, bytes,
                             coll_cfg().ring_threshold);
  }

  // Ring algorithm building blocks (see the .cpp for the shapes).
  void bcast_ring(void* data, std::size_t bytes, int root);
  /// Reduce-scatter over the ring; on return this rank's owned chunk
  /// (index (rel + 1) % P) of `work` holds the fully combined values.
  /// `work` may be null for modeled-only runs.
  void ring_reduce_scatter(double* work, int n, int root, bool is_max);
  void ring_allgather(double* work, int n, int root);
  void reduce_ring(double* inout, int n, int root, bool is_max);
  void allreduce_ring(double* inout, int n, bool is_max);

  void alltoall_pairwise(const void* send_all, std::size_t bytes_each,
                         void* recv_all);
  void alltoall_linear(const void* send_all, std::size_t bytes_each,
                       void* recv_all);

  /// Closed-form collective completion cost for P ranks, `bytes` payload
  /// (abstract comm fidelity). Hop-aware: charges the platform's diameter
  /// latency per round, which on flat equals the base latency.
  VTime abstract_coll_cost(std::size_t bytes) const;

  void trace(CommEvent::Kind kind, int peer, int tag, std::size_t bytes) {
    if (world_.options().trace != nullptr) {
      world_.options().trace->add(rank(), CommEvent{kind, peer, tag, bytes});
    }
  }

  /// Observability twin of trace(): records the op's virtual-time span
  /// [begin, now()]. Called where the op's comm_time is accounted, so
  /// spans and RankStats always agree.
  void obs_op(obs::OpKind kind, int peer, std::size_t bytes, VTime begin) {
    if (world_.options().obs != nullptr) {
      world_.options().obs->record_op(rank(), kind, peer, bytes, begin,
                                      now());
    }
  }

  World& world_;
  simk::Process& proc_;
  RankStats& stats_;
  std::uint32_t next_rid_ = 1;
  std::uint64_t coll_seq_ = 0;
};

}  // namespace stgsim::smpi
