// Flat binary serialization for checkpoint blobs.
//
// The optimistic scheduler's periodic checkpoints capture a rank's
// replayable state (DESIGN.md §15): the engine's cursors plus an opaque
// application blob written by the layers that own target-program state
// (smpi::Comm, the IR interpreter, the obs recorder shard). BlobWriter /
// BlobReader are the framing those layers share. The format is private to
// one process image — blobs never cross runs or hosts — so raw
// little-endian memcpy of trivially copyable types is exact and cheap.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "support/check.hpp"

namespace stgsim {

class BlobWriter {
 public:
  explicit BlobWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }

  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof v);
  }

  template <typename T>
  void vec_pod(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class BlobReader {
 public:
  BlobReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BlobReader(const std::vector<std::uint8_t>& v)
      : BlobReader(v.data(), v.size()) {}

  void raw(void* p, std::size_t n) {
    STGSIM_CHECK(pos_ + n <= size_) << "checkpoint blob truncated";
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return get<double>(); }

  std::string str() {
    const std::uint64_t n = u64();
    STGSIM_CHECK(pos_ + n <= size_) << "checkpoint blob truncated";
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    raw(&v, sizeof v);
    return v;
  }

  template <typename T>
  void vec_pod(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    out->resize(static_cast<std::size_t>(n));
    raw(out->data(), out->size() * sizeof(T));
  }

  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace stgsim
