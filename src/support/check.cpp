#include "support/check.hpp"

namespace stgsim::detail {

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace stgsim::detail
