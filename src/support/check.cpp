#include "support/check.hpp"

#include <cstdio>

namespace stgsim::detail {

namespace {

std::string format_failure(const char* cond, const char* file, int line,
                           const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}

}  // namespace

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  const std::string what = format_failure(cond, file, line, msg);
  std::fprintf(stderr, "%s\n", what.c_str());
  std::fflush(stderr);
  throw CheckError(what);
}

void check_failed_noexcept(const char* cond, const char* file, int line,
                           const std::string& msg) noexcept {
  try {
    const std::string what = format_failure(cond, file, line, msg);
    std::fprintf(stderr, "%s (suppressed: stack unwinding in progress)\n",
                 what.c_str());
    std::fflush(stderr);
  } catch (...) {
    // Formatting must never throw out of a noexcept reporting path.
  }
}

}  // namespace stgsim::detail
