// Lightweight invariant checking for STGSim.
//
// STGSIM_CHECK is always on (simulation correctness beats the last few
// percent of speed); STGSIM_DCHECK compiles out in release builds and is
// meant for hot paths (event queues, interpreter dispatch).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace stgsim {

/// Thrown when an internal invariant is violated. Carries the failing
/// condition text and location so tests can assert on failures.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);

/// Builds the optional streamed message for a failed check.
class CheckMessage {
 public:
  CheckMessage(const char* cond, const char* file, int line)
      : cond_(cond), file_(file), line_(line) {}

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(cond_, file_, line_, stream_.str());
  }

 private:
  const char* cond_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace stgsim

#define STGSIM_CHECK(cond)                                          \
  if (cond) {                                                       \
  } else                                                            \
    ::stgsim::detail::CheckMessage(#cond, __FILE__, __LINE__)

#define STGSIM_CHECK_EQ(a, b) STGSIM_CHECK((a) == (b))
#define STGSIM_CHECK_NE(a, b) STGSIM_CHECK((a) != (b))
#define STGSIM_CHECK_LT(a, b) STGSIM_CHECK((a) < (b))
#define STGSIM_CHECK_LE(a, b) STGSIM_CHECK((a) <= (b))
#define STGSIM_CHECK_GT(a, b) STGSIM_CHECK((a) > (b))
#define STGSIM_CHECK_GE(a, b) STGSIM_CHECK((a) >= (b))

#ifdef NDEBUG
#define STGSIM_DCHECK(cond) \
  if (true) {               \
  } else                    \
    ::stgsim::detail::CheckMessage(#cond, __FILE__, __LINE__)
#else
#define STGSIM_DCHECK(cond) STGSIM_CHECK(cond)
#endif

#define STGSIM_UNREACHABLE(msg)                                             \
  ::stgsim::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))
