// Lightweight invariant checking for STGSim.
//
// STGSIM_CHECK is always on (simulation correctness beats the last few
// percent of speed); STGSIM_DCHECK compiles out in release builds and is
// meant for hot paths (event queues, interpreter dispatch).
#pragma once

#include <exception>
#include <sstream>
#include <stdexcept>
#include <string>

namespace stgsim {

/// Thrown when an internal invariant is violated. Carries the failing
/// condition text and location so tests can assert on failures.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/// Prints the failure to stderr and throws CheckError.
[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);

/// Like check_failed, but only prints: used when throwing would call
/// std::terminate (check failing during stack unwinding).
void check_failed_noexcept(const char* cond, const char* file, int line,
                           const std::string& msg) noexcept;

/// Builds the optional streamed message for a failed check.
class CheckMessage {
 public:
  CheckMessage(const char* cond, const char* file, int line)
      : cond_(cond), file_(file), line_(line) {}

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  ~CheckMessage() noexcept(false) {
    // A check can fail inside a destructor that runs while another
    // exception is already unwinding the stack; throwing then would call
    // std::terminate before anything is reported. Log-and-continue keeps
    // the original exception (which the harness turns into a structured
    // outcome) as the error of record.
    if (std::uncaught_exceptions() > 0) {
      check_failed_noexcept(cond_, file_, line_, stream_.str());
    } else {
      check_failed(cond_, file_, line_, stream_.str());
    }
  }

 private:
  const char* cond_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace stgsim

#define STGSIM_CHECK(cond)                                          \
  if (cond) {                                                       \
  } else                                                            \
    ::stgsim::detail::CheckMessage(#cond, __FILE__, __LINE__)

#define STGSIM_CHECK_EQ(a, b) STGSIM_CHECK((a) == (b))
#define STGSIM_CHECK_NE(a, b) STGSIM_CHECK((a) != (b))
#define STGSIM_CHECK_LT(a, b) STGSIM_CHECK((a) < (b))
#define STGSIM_CHECK_LE(a, b) STGSIM_CHECK((a) <= (b))
#define STGSIM_CHECK_GT(a, b) STGSIM_CHECK((a) > (b))
#define STGSIM_CHECK_GE(a, b) STGSIM_CHECK((a) >= (b))

#ifdef NDEBUG
#define STGSIM_DCHECK(cond) \
  if (true) {               \
  } else                    \
    ::stgsim::detail::CheckMessage(#cond, __FILE__, __LINE__)
#else
#define STGSIM_DCHECK(cond) STGSIM_CHECK(cond)
#endif

#define STGSIM_UNREACHABLE(msg)                                             \
  ::stgsim::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))
