#include "support/errors.hpp"

#include <utility>

namespace stgsim::errors {

bool known_category(const std::string& category) {
  return category == kCategoryUsage || category == kCategoryOutOfMemory ||
         category == kCategoryDeadlock ||
         category == kCategoryBudgetExceeded ||
         category == kCategoryInternalError ||
         category == kCategoryDivergence;
}

int category_exit_code(const std::string& category) {
  if (category == kCategoryUsage) return 1;
  if (category == kCategoryOutOfMemory) return 2;
  if (category == kCategoryDeadlock) return 3;
  if (category == kCategoryBudgetExceeded) return 4;
  if (category == kCategoryInternalError) return 5;
  if (category == kCategoryDivergence) return 6;
  return 5;
}

StructuredError::StructuredError(std::string code, std::string category,
                                 std::string message, json::Value detail)
    : std::runtime_error(message),
      code_(std::move(code)),
      category_(std::move(category)),
      detail_(std::move(detail)) {}

json::Value error_envelope(const std::string& code,
                           const std::string& category,
                           const std::string& message,
                           const json::Value& detail) {
  json::Value err = json::Value::object();
  err.set("api", json::Value(kErrorApi));
  err.set("code", json::Value(code));
  err.set("category",
          json::Value(known_category(category) ? category
                                               : std::string(
                                                     kCategoryInternalError)));
  err.set("message", json::Value(message));
  if (!detail.is_null()) err.set("detail", detail);
  json::Value doc = json::Value::object();
  doc.set("error", std::move(err));
  return doc;
}

json::Value error_envelope(const StructuredError& e) {
  return error_envelope(e.code(), e.category(), e.what(), e.detail());
}

json::Value error_envelope_for(const std::exception& e,
                               const std::string& fallback_code,
                               const std::string& fallback_category) {
  if (const auto* se = dynamic_cast<const StructuredError*>(&e)) {
    return error_envelope(*se);
  }
  return error_envelope(fallback_code, fallback_category, e.what());
}

json::Value error_envelope_schema_json() {
  const auto str_type = [] {
    json::Value t = json::Value::object();
    t.set("type", json::Value("string"));
    return t;
  };
  json::Value categories = json::Value::array();
  for (const char* c :
       {kCategoryUsage, kCategoryOutOfMemory, kCategoryDeadlock,
        kCategoryBudgetExceeded, kCategoryInternalError, kCategoryDivergence}) {
    categories.push_back(json::Value(c));
  }

  json::Value props = json::Value::object();
  json::Value api = str_type();
  api.set("const", json::Value(kErrorApi));
  props.set("api", api);
  props.set("code", str_type());
  json::Value category = str_type();
  category.set("enum", categories);
  props.set("category", category);
  props.set("message", str_type());
  json::Value detail = json::Value::object();
  detail.set("description",
             json::Value("free-form structured context, code-specific"));
  props.set("detail", detail);

  json::Value inner = json::Value::object();
  inner.set("type", json::Value("object"));
  inner.set("properties", props);
  json::Value required = json::Value::array();
  for (const char* k : {"api", "code", "category", "message"}) {
    required.push_back(json::Value(k));
  }
  inner.set("required", required);
  inner.set("additionalProperties", json::Value(false));

  json::Value schema = json::Value::object();
  schema.set("$id", json::Value(std::string(kErrorApi)));
  schema.set("title", json::Value("stgsim structured-error envelope"));
  schema.set("description",
             json::Value("Shared byte-for-byte by daemon responses and every "
                         "CLI subcommand under --json-errors; category maps "
                         "to the CLI exit codes (usage=1, out_of_memory=2, "
                         "deadlock=3, budget_exceeded=4, internal_error=5, "
                         "divergence=6)."));
  schema.set("type", json::Value("object"));
  json::Value outer_props = json::Value::object();
  outer_props.set("error", inner);
  schema.set("properties", outer_props);
  json::Value outer_required = json::Value::array();
  outer_required.push_back(json::Value("error"));
  schema.set("required", outer_required);
  schema.set("additionalProperties", json::Value(false));
  return schema;
}

}  // namespace stgsim::errors
