// One structured-error surface for every front end.
//
// Before this existed each failure path invented its own shape: the CLI
// printed "error: <text>" and exited 1, the campaign runner stringified
// exceptions into diagnostics, and a daemon would have had nothing
// machine-readable to put on the wire at all. A StructuredError carries
// what a program (or a remote client) needs to react: a stable `code`
// ("usage.removed_flag", "serve.queue_full"), a `category` drawn from the
// RunOutcome status taxonomy plus "usage", a human message, and optional
// structured detail.
//
// The envelope is versioned (kErrorApi) and rendered by exactly one
// function, so the daemon's wire responses and the CLI's --json-errors
// output are byte-for-byte the same object:
//
//   {"error":{"api":"stgsim-error-1","category":"usage",
//             "code":"usage.removed_flag","detail":{...},"message":"..."}}
//
// Categories map onto the CLI exit codes that predate the envelope
// (category_exit_code), so scripts keyed on exit status keep working.
#pragma once

#include <stdexcept>
#include <string>

#include "support/json.hpp"

namespace stgsim::errors {

/// Version tag of the error envelope. Bumped only when the envelope's
/// *shape* changes; new codes and categories are additive.
inline constexpr const char kErrorApi[] = "stgsim-error-1";

/// Envelope categories: the RunOutcome status taxonomy plus "usage"
/// (malformed requests, removed flags, unknown schema versions) and
/// "divergence" (protocol-gate failures).
inline constexpr const char kCategoryUsage[] = "usage";
inline constexpr const char kCategoryOutOfMemory[] = "out_of_memory";
inline constexpr const char kCategoryDeadlock[] = "deadlock";
inline constexpr const char kCategoryBudgetExceeded[] = "budget_exceeded";
inline constexpr const char kCategoryInternalError[] = "internal_error";
inline constexpr const char kCategoryDivergence[] = "divergence";

/// True for the category names above.
bool known_category(const std::string& category);

/// The CLI exit code a category maps to (usage→1, out_of_memory→2,
/// deadlock→3, budget_exceeded→4, internal_error→5, divergence→6).
/// Unknown categories map to internal_error's code.
int category_exit_code(const std::string& category);

/// An error with a machine-readable identity. `detail` is free-form
/// structured context (e.g. {"replacement": "--workers"} for a removed
/// flag, {"supported": [...]} for a version rejection).
class StructuredError : public std::runtime_error {
 public:
  StructuredError(std::string code, std::string category, std::string message,
                  json::Value detail = json::Value());

  const std::string& code() const { return code_; }
  const std::string& category() const { return category_; }
  const json::Value& detail() const { return detail_; }

 private:
  std::string code_;
  std::string category_;
  json::Value detail_;
};

/// The canonical envelope document: {"error": {api, category, code,
/// message[, detail]}}. Null detail is omitted. This is the ONLY place
/// the envelope is assembled — the daemon and the CLI both call it.
json::Value error_envelope(const std::string& code,
                           const std::string& category,
                           const std::string& message,
                           const json::Value& detail = json::Value());
json::Value error_envelope(const StructuredError& e);

/// Wraps any exception: a StructuredError keeps its identity; everything
/// else becomes (fallback_code, fallback_category, e.what()).
json::Value error_envelope_for(const std::exception& e,
                               const std::string& fallback_code,
                               const std::string& fallback_category);

/// JSON Schema for the envelope (published as "stgsim-error-1" by
/// `stgsim schema`).
json::Value error_envelope_schema_json();

}  // namespace stgsim::errors
