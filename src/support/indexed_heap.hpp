// Indexed binary min-heap over small-integer ids with decrease-key by
// position index. The scheduler's working set is "runnable processes keyed
// by virtual clock": ids are dense rank numbers, so the id -> heap-slot
// map is a flat vector and every operation is O(log n) with no allocation
// after reserve(). Ties break toward the smaller id — the same
// (key, id) lexicographic order a std::priority_queue of pairs yields —
// which is what keeps scheduling deterministic across refactors.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace stgsim {

template <typename Key>
class IndexedMinHeap {
 public:
  IndexedMinHeap() = default;
  explicit IndexedMinHeap(int capacity) { reset(capacity); }

  /// Clears the heap and admits ids in [0, capacity).
  void reset(int capacity) {
    heap_.clear();
    heap_.reserve(static_cast<std::size_t>(capacity));
    pos_.assign(static_cast<std::size_t>(capacity), kAbsent);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  int capacity() const { return static_cast<int>(pos_.size()); }

  bool contains(int id) const {
    return pos_[static_cast<std::size_t>(id)] != kAbsent;
  }

  Key key_of(int id) const {
    STGSIM_DCHECK(contains(id));
    return heap_[static_cast<std::size_t>(pos_[static_cast<std::size_t>(id)])]
        .key;
  }

  /// Inserts an id that must not already be present.
  void push(int id, Key key) {
    STGSIM_DCHECK(id >= 0 && id < capacity());
    STGSIM_DCHECK(!contains(id));
    pos_[static_cast<std::size_t>(id)] = static_cast<int>(heap_.size());
    heap_.push_back(Entry{key, id});
    sift_up(heap_.size() - 1);
  }

  /// Re-keys a present id (up or down).
  void update(int id, Key key) {
    const std::size_t i =
        static_cast<std::size_t>(pos_[static_cast<std::size_t>(id)]);
    STGSIM_DCHECK(pos_[static_cast<std::size_t>(id)] != kAbsent);
    const Key old = heap_[i].key;
    heap_[i].key = key;
    if (key < old) {
      sift_up(i);
    } else if (old < key) {
      sift_down(i);
    }
  }

  void push_or_update(int id, Key key) {
    if (contains(id)) {
      update(id, key);
    } else {
      push(id, key);
    }
  }

  /// Minimum (key, id) pair without removing it.
  std::pair<Key, int> top() const {
    STGSIM_DCHECK(!heap_.empty());
    return {heap_.front().key, heap_.front().id};
  }

  /// Removes and returns the id with the minimum (key, id) pair.
  int pop() {
    STGSIM_DCHECK(!heap_.empty());
    const int id = heap_.front().id;
    remove_at(0);
    return id;
  }

  /// Removes a present id from anywhere in the heap.
  void erase(int id) {
    STGSIM_DCHECK(contains(id));
    remove_at(static_cast<std::size_t>(pos_[static_cast<std::size_t>(id)]));
  }

 private:
  struct Entry {
    Key key;
    int id;
  };
  static constexpr int kAbsent = -1;

  // (key, id) lexicographic — the deterministic tie-break.
  static bool less(const Entry& a, const Entry& b) {
    return a.key < b.key || (!(b.key < a.key) && a.id < b.id);
  }

  void place(std::size_t i, Entry e) {
    heap_[i] = e;
    pos_[static_cast<std::size_t>(e.id)] = static_cast<int>(i);
  }

  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(e, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, e);
  }

  void sift_down(std::size_t i) {
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && less(heap_[child + 1], heap_[child])) ++child;
      if (!less(heap_[child], e)) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, e);
  }

  void remove_at(std::size_t i) {
    pos_[static_cast<std::size_t>(heap_[i].id)] = kAbsent;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (i == heap_.size()) return;
    place(i, last);
    sift_down(i);
    if (static_cast<std::size_t>(pos_[static_cast<std::size_t>(last.id)]) == i) {
      sift_up(i);
    }
  }

  std::vector<Entry> heap_;
  std::vector<int> pos_;  // id -> heap index, kAbsent when not queued
};

}  // namespace stgsim
