#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace stgsim::json {

std::string format_double(double v) {
  if (!std::isfinite(v)) {
    throw std::runtime_error("non-finite number is not representable");
  }
  // Integral values inside the exactly-representable range print as
  // integers ("4096", not "4096.0" or "4.096e3").
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf),
                                   static_cast<std::int64_t>(v));
    return std::string(buf, res.ptr);
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

// ---------------------------------------------------------------------------
// Accessors

namespace {
[[noreturn]] void kind_error(const char* want, Value::Kind got) {
  static const char* names[] = {"null", "bool", "number",
                                "string", "array", "object"};
  throw std::runtime_error(std::string("JSON value is ") +
                           names[static_cast<int>(got)] + ", expected " +
                           want);
}
}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return num_;
}

std::int64_t Value::as_int() const {
  const double d = as_number();
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    throw std::runtime_error("JSON number " + format_double(d) +
                             " is not an integer");
  }
  return i;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return str_;
}

const Value::Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

Value::Array& Value::as_array() {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

const Value::Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

Value::Object& Value::as_object() {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("missing JSON key '" + key + "'");
  }
  return *v;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

void Value::set(const std::string& key, Value v) {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  obj_[key] = std::move(v);
}

void Value::push_back(Value v) {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  arr_.push_back(std::move(v));
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber: return num_ == other.num_;
    case Kind::kString: return str_ == other.str_;
    case Kind::kArray: return arr_ == other.arr_;
    case Kind::kObject: return obj_ == other.obj_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Writer

namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out->push_back('"');
}

void append_newline_indent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: *out += "null"; return;
    case Kind::kBool: *out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: *out += format_double(num_); return;
    case Kind::kString: append_escaped(out, str_); return;
    case Kind::kArray: {
      if (arr_.empty()) { *out += "[]"; return; }
      out->push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out->push_back(',');
        append_newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) { *out += "{}"; return; }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out->push_back(',');
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, k);
        *out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value();
    }
    return parse_number();
  }

  Value parse_number() {
    double d = 0.0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto res = std::from_chars(begin, end, d);
    if (res.ec == std::errc::result_out_of_range) fail("number out of range");
    if (res.ec != std::errc() || res.ptr == begin) fail("malformed number");
    // from_chars accepts "inf"/"nan" spellings JSON forbids; and no finite
    // value may decode to a non-finite one (the writer refuses to emit
    // them, so round-tripping can't produce this either).
    if (!std::isfinite(d)) fail("non-finite number");
    pos_ = static_cast<std::size_t>(res.ptr - text_.data());
    return Value(d);
  }

  void append_utf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          append_utf8(&out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return out; }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ']') { ++pos_; return out; }
      if (c != ',') fail("expected ',' or ']' in array");
      ++pos_;
    }
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return out; }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == '}') { ++pos_; return out; }
      if (c != ',') fail("expected ',' or '}' in object");
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace stgsim::json
