// Minimal JSON document model with a *canonical* writer.
//
// The campaign subsystem keys its result cache on a digest of the
// serialized run configuration, and promises byte-identical reports across
// re-invocations. Both properties need a JSON representation that is a pure
// function of the value: object keys are kept sorted (std::map), doubles
// are printed with the shortest representation that round-trips exactly
// (std::to_chars), and the writer emits no locale- or pointer-dependent
// bytes. parse(dump(v)) == v for every value built from finite numbers.
//
// This is deliberately small: no comments, no NaN/Inf (checked), UTF-8
// passed through verbatim, \uXXXX escapes decoded to UTF-8 on parse.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stgsim::json {

/// Shortest decimal string that parses back to exactly `v`; integral
/// values within the exact-double range print without a decimal point.
/// Shared by every writer that must round-trip doubles (JSON, machine
/// spec strings, fault-plan specs, CSV).
std::string format_double(double v);

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;  // sorted => canonical dumps

  Value() = default;  // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), num_(d) {}
  Value(int v) : kind_(Kind::kNumber), num_(v) {}
  Value(std::int64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Value(std::uint64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Value(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  Value(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; throw std::runtime_error on kind mismatch so scenario
  // files fail with a message instead of reading garbage.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< checks the number is integral
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member access. `at` throws with the key name when missing;
  /// `find` returns nullptr. `set` inserts or overwrites.
  const Value& at(const std::string& key) const;
  const Value* find(const std::string& key) const;
  void set(const std::string& key, Value v);
  bool has(const std::string& key) const { return find(key) != nullptr; }

  void push_back(Value v);

  bool operator==(const Value& other) const;

  /// Canonical serialization: sorted keys, shortest round-trip numbers.
  /// indent < 0 emits the compact one-line form; indent >= 0 pretty-prints
  /// with that many spaces per level (still canonical — only whitespace
  /// differs between the two, and each form is itself deterministic).
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws std::runtime_error with offset information on malformed input.
  static Value parse(const std::string& text);

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace stgsim::json
