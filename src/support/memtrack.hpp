// Memory accounting for simulated target processes.
//
// Table 1 of the paper compares the total memory footprint of the
// direct-execution simulator against the compiler-optimized one. Every
// array a simulated program allocates goes through a MemoryTracker so the
// harness can report exact per-run target-data footprints, enforce a cap
// (to reproduce "exceeds available memory" outcomes without taking the
// host down), and record high-water marks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace stgsim {

/// Thrown when a run would exceed the configured memory cap; the harness
/// reports such configurations as "not simulatable" (paper Figs. 10/11).
class MemoryCapExceeded : public std::runtime_error {
 public:
  MemoryCapExceeded(std::size_t requested, std::size_t cap)
      : std::runtime_error("simulated allocation of " +
                           std::to_string(requested) +
                           " bytes exceeds memory cap of " +
                           std::to_string(cap) + " bytes"),
        requested_bytes(requested),
        cap_bytes(cap) {}

  std::size_t requested_bytes;
  std::size_t cap_bytes;
};

/// Thread-safe byte counter with a high-water mark and an optional cap.
class MemoryTracker {
 public:
  /// cap_bytes == 0 means "uncapped".
  explicit MemoryTracker(std::size_t cap_bytes = 0) : cap_(cap_bytes) {}

  void set_cap(std::size_t cap_bytes) { cap_ = cap_bytes; }
  std::size_t cap() const { return cap_; }

  /// Registers an allocation; throws MemoryCapExceeded over the cap.
  void add(std::size_t bytes) {
    const std::size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (cap_ != 0 && now > cap_) {
      current_.fetch_sub(bytes, std::memory_order_relaxed);
      throw MemoryCapExceeded(now, cap_);
    }
    // Racy max update is fine: publish-and-retry loop.
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }

  void remove(std::size_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::size_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  void reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
  std::size_t cap_ = 0;
};

/// A heap buffer whose size is charged against a MemoryTracker for its
/// whole lifetime. Simulated program arrays are TrackedBuffers.
class TrackedBuffer {
 public:
  TrackedBuffer() = default;

  TrackedBuffer(MemoryTracker* tracker, std::size_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->add(bytes_);
    data_ = new std::uint8_t[bytes_]();
  }

  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;

  TrackedBuffer(TrackedBuffer&& other) noexcept { swap(other); }
  TrackedBuffer& operator=(TrackedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  ~TrackedBuffer() { release(); }

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size_bytes() const { return bytes_; }
  bool valid() const { return data_ != nullptr; }

  double* as_doubles() { return reinterpret_cast<double*>(data_); }
  const double* as_doubles() const {
    return reinterpret_cast<const double*>(data_);
  }

 private:
  void release() {
    if (data_ != nullptr) {
      delete[] data_;
      if (tracker_ != nullptr) tracker_->remove(bytes_);
    }
    data_ = nullptr;
    tracker_ = nullptr;
    bytes_ = 0;
  }

  void swap(TrackedBuffer& other) {
    std::swap(tracker_, other.tracker_);
    std::swap(bytes_, other.bytes_);
    std::swap(data_, other.data_);
  }

  MemoryTracker* tracker_ = nullptr;
  std::size_t bytes_ = 0;
  std::uint8_t* data_ = nullptr;
};

}  // namespace stgsim
