// Locale-independent numeric parsing built on std::from_chars.
//
// std::stod/std::stoll are locale-dependent (a de_DE.UTF-8 process reads
// "3.14" as 3) and report overflow by throwing std::out_of_range, which
// callers historically let escape as a crash. These helpers are pure
// functions of the input bytes: they parse the C locale's formats only,
// require the whole string to be consumed, reject "inf"/"nan" spellings
// (no caller wants a non-finite config value), and report every failure —
// including out-of-range — through the returned status so call sites can
// raise a structured error with a nonzero exit instead.
#pragma once

#include <charconv>
#include <cstdint>
#include <string_view>
#include <system_error>

namespace stgsim::support {

enum class ParseNumStatus {
  kOk,
  kBadFormat,    ///< not a number, or trailing junk after one
  kOutOfRange,   ///< syntactically valid but unrepresentable
  kNotFinite,    ///< "inf"/"nan" spellings (rejected by policy)
};

/// Parses a base-10 signed integer occupying the entire string.
inline ParseNumStatus parse_i64(std::string_view text, long long* out) {
  // from_chars rejects a leading '+'; accept it here for CLI friendliness
  // ("--procs +8") and to match what std::stoll used to allow.
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  if (text.empty()) return ParseNumStatus::kBadFormat;
  long long v = 0;
  const auto r = std::from_chars(text.data(), text.data() + text.size(), v);
  if (r.ec == std::errc::result_out_of_range) {
    return ParseNumStatus::kOutOfRange;
  }
  if (r.ec != std::errc{} || r.ptr != text.data() + text.size()) {
    return ParseNumStatus::kBadFormat;
  }
  *out = v;
  return ParseNumStatus::kOk;
}

/// Parses a decimal floating-point number (fixed or scientific notation)
/// occupying the entire string. Non-finite results and the "inf"/"nan"
/// spellings from_chars itself accepts are rejected.
inline ParseNumStatus parse_f64(std::string_view text, double* out) {
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  if (text.empty()) return ParseNumStatus::kBadFormat;
  // from_chars accepts "inf"/"infinity"/"nan" (any case); screen them out
  // before parsing so they surface as kNotFinite, not as a valid value.
  const char c = text.front() == '-' && text.size() > 1 ? text[1]
                                                        : text.front();
  if (c == 'i' || c == 'I' || c == 'n' || c == 'N') {
    return ParseNumStatus::kNotFinite;
  }
  double v = 0.0;
  const auto r = std::from_chars(text.data(), text.data() + text.size(), v);
  if (r.ec == std::errc::result_out_of_range) {
    return ParseNumStatus::kOutOfRange;
  }
  if (r.ec != std::errc{} || r.ptr != text.data() + text.size()) {
    return ParseNumStatus::kBadFormat;
  }
  *out = v;
  return ParseNumStatus::kOk;
}

/// "expected an integer"-style suffix for error messages; distinguishes
/// out-of-range from malformed so the user sees which mistake they made.
inline const char* parse_num_problem(ParseNumStatus s, const char* kind) {
  switch (s) {
    case ParseNumStatus::kOutOfRange: return "value out of range";
    case ParseNumStatus::kNotFinite: return "non-finite values not allowed";
    default: break;
  }
  return kind;
}

}  // namespace stgsim::support
