// Deterministic, seedable random number generation.
//
// The simulator must be bit-reproducible across runs and across scheduler
// choices, so every stochastic component (emulation noise, workload
// generators, property tests) draws from an explicitly seeded stream.
#pragma once

#include <array>
#include <cstdint>

namespace stgsim {

/// SplitMix64 — used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality generator for the hot paths.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Raw generator state, for checkpoint/restore. Restoring a captured
  /// state resumes the stream exactly where the capture left it.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Approximately normal variate via the sum of uniforms (fast, no libm
  /// state); adequate for injecting measurement noise.
  double next_gaussian() {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += next_double();
    return acc - 6.0;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace stgsim
