// Small statistics helpers used by the harness and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "support/check.hpp"

namespace stgsim {

/// Signed relative error of `predicted` against `reference`.
inline double relative_error(double predicted, double reference) {
  STGSIM_CHECK(reference != 0.0) << "relative error vs zero reference";
  return (predicted - reference) / reference;
}

/// |relative error|.
inline double abs_relative_error(double predicted, double reference) {
  return std::abs(relative_error(predicted, reference));
}

/// Count-per-second throughput, finite even for zero-duration runs (a
/// degenerate sub-clock-tick bench point must not write inf into a JSON
/// report the canonical writer would then refuse to serialize).
inline double safe_rate(double count, double seconds) {
  return count / std::max(1e-9, seconds);
}

/// baseline/current wall-clock ratio; 0 (meaning "no data") when either
/// duration is zero, negative, or NaN rather than inf/nan.
inline double safe_speedup(double baseline_seconds, double seconds) {
  if (!(baseline_seconds > 0.0) || !(seconds > 0.0)) return 0.0;
  return baseline_seconds / seconds;
}

inline double mean(const std::vector<double>& xs) {
  STGSIM_CHECK(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

inline double max_value(const std::vector<double>& xs) {
  STGSIM_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

/// Geometric mean of strictly positive values.
inline double geomean(const std::vector<double>& xs) {
  STGSIM_CHECK(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    STGSIM_CHECK_GT(x, 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

/// Running accumulator for mean / min / max over a stream of samples.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = HUGE_VAL;
  double max_ = -HUGE_VAL;
};

}  // namespace stgsim
