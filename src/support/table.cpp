#include "support/table.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace stgsim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  STGSIM_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  STGSIM_CHECK_EQ(cells.size(), headers_.size())
      << "row width mismatch in table";
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(widths[c] - row[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string TablePrinter::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c != 0 ? "," : "") << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c != 0 ? "," : "") << escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string TablePrinter::fmt_bytes(std::size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2f GB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2f MB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%zu B", bytes);
  }
  return buf;
}

std::string TablePrinter::fmt_percent(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& title,
                             const std::vector<std::string>& notes) {
  os << "\n== " << id << ": " << title << " ==\n";
  for (const auto& n : notes) os << "   " << n << '\n';
  os << '\n';
}

}  // namespace stgsim
