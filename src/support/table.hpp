// ASCII table / CSV rendering shared by the bench binaries.
//
// Every figure/table reproduction prints its series through TablePrinter so
// the output of `for b in build/bench/*; do $b; done` is uniform and easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stgsim {

/// Columnar table with string cells; renders aligned ASCII or CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }

  std::string to_ascii() const;
  std::string to_csv() const;

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);
  static std::string fmt_bytes(std::size_t bytes);
  static std::string fmt_percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a banner like "== Figure 4: ... ==" followed by context lines.
void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& title,
                             const std::vector<std::string>& notes);

}  // namespace stgsim
