#include "support/vtime.hpp"

#include <cstdio>

namespace stgsim {

std::string vtime_to_string(VTime t) {
  char buf[64];
  const double ns = static_cast<double>(t);
  if (t == kVTimeNever) {
    return "never";
  } else if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f s", ns * 1e-9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ns * 1e-6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f us", ns * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace stgsim
