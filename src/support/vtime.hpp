// Virtual (simulated) time.
//
// Fixed-point nanoseconds in an int64 keeps virtual time exactly
// associative and reproducible — floating point seconds would make event
// ordering depend on summation order across schedulers.
#pragma once

#include <cstdint>
#include <string>

namespace stgsim {

/// Virtual time / durations in nanoseconds.
using VTime = std::int64_t;

inline constexpr VTime kVTimeNever = INT64_MAX;

constexpr VTime vtime_from_ns(double ns) {
  return static_cast<VTime>(ns + (ns >= 0 ? 0.5 : -0.5));
}
constexpr VTime vtime_from_us(double us) { return vtime_from_ns(us * 1e3); }
constexpr VTime vtime_from_ms(double ms) { return vtime_from_ns(ms * 1e6); }
constexpr VTime vtime_from_sec(double s) { return vtime_from_ns(s * 1e9); }

constexpr double vtime_to_sec(VTime t) { return static_cast<double>(t) * 1e-9; }
constexpr double vtime_to_us(VTime t) { return static_cast<double>(t) * 1e-3; }

/// Renders a time like "1.234 s" / "56.7 us" for tables and logs.
std::string vtime_to_string(VTime t);

}  // namespace stgsim
