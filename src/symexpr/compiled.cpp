#include "symexpr/compiled.hpp"

#include <utility>

namespace stgsim::sym {

// Emits postfix code for a DAG, resolving variables lexically: Sum binders
// shadow outer bindings and free variables of the same name. Every binder
// gets a fresh slot; free variables are interned so repeated uses share
// one slot.
class CompiledExpr::Builder {
 public:
  explicit Builder(CompiledExpr& out) : out_(out) {}

  void emit(const Node& n) {
    switch (n.op) {
      case Op::kConst: {
        const std::int32_t idx = static_cast<std::int32_t>(out_.consts_.size());
        out_.consts_.push_back(n.constant);
        out_.tape_.push_back({Code::kConst, Op::kConst, idx, 0});
        return;
      }
      case Op::kVar: {
        out_.tape_.push_back({Code::kLoad, Op::kConst, resolve(n.var), 0});
        return;
      }
      case Op::kNeg:
        emit(*n.children[0]);
        out_.tape_.push_back({Code::kNeg, Op::kConst, 0, 0});
        return;
      case Op::kNot:
        emit(*n.children[0]);
        out_.tape_.push_back({Code::kNot, Op::kConst, 0, 0});
        return;
      case Op::kSelect: {
        emit(*n.children[0]);
        const std::size_t branch = out_.tape_.size();
        out_.tape_.push_back({Code::kBranchFalse, Op::kConst, 0, 0});
        emit(*n.children[1]);
        const std::size_t jump = out_.tape_.size();
        out_.tape_.push_back({Code::kJump, Op::kConst, 0, 0});
        out_.tape_[branch].a = static_cast<std::int32_t>(out_.tape_.size());
        emit(*n.children[2]);
        out_.tape_[jump].a = static_cast<std::int32_t>(out_.tape_.size());
        return;
      }
      case Op::kSum: {
        emit(*n.children[0]);  // lo
        emit(*n.children[1]);  // hi
        const std::int32_t slot = fresh_slot(n.var);
        const std::size_t head = out_.tape_.size();
        out_.tape_.push_back({Code::kSum, Op::kConst, slot, 0});
        scopes_.push_back({n.var, slot});
        emit(*n.children[2]);  // body
        scopes_.pop_back();
        out_.tape_[head].b = static_cast<std::int32_t>(out_.tape_.size());
        return;
      }
      default:
        emit(*n.children[0]);
        emit(*n.children[1]);
        out_.tape_.push_back({Code::kBinary, n.op, 0, 0});
        return;
    }
  }

 private:
  std::int32_t fresh_slot(const std::string& name) {
    const std::int32_t slot = static_cast<std::int32_t>(out_.slot_names_.size());
    out_.slot_names_.push_back(name);
    return slot;
  }

  std::int32_t resolve(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    for (int s : out_.free_slots_) {
      if (out_.slot_names_[static_cast<std::size_t>(s)] == name) return s;
    }
    const std::int32_t slot = fresh_slot(name);
    out_.free_slots_.push_back(slot);
    return slot;
  }

  CompiledExpr& out_;
  std::vector<std::pair<std::string, std::int32_t>> scopes_;
};

CompiledExpr CompiledExpr::compile(const Expr& e) {
  CompiledExpr out;
  Builder b(out);
  b.emit(e.node());
  return out;
}

Value CompiledExpr::run(Scratch& s, std::size_t pc, std::size_t end) const {
  const std::size_t base = s.stack.size();
  while (pc < end) {
    const Inst& in = tape_[pc];
    switch (in.code) {
      case Code::kConst:
        s.stack.push_back(consts_[static_cast<std::size_t>(in.a)]);
        ++pc;
        break;
      case Code::kLoad: {
        const std::size_t slot = static_cast<std::size_t>(in.a);
        if (!s.bound[slot]) {
          throw EvalError("unbound variable '" + slot_names_[slot] + "'");
        }
        s.stack.push_back(s.slots[slot]);
        ++pc;
        break;
      }
      case Code::kNeg: {
        Value& v = s.stack.back();
        v = v.is_int() ? Value(-v.as_int()) : Value(-v.as_real());
        ++pc;
        break;
      }
      case Code::kNot: {
        Value& v = s.stack.back();
        v = Value(static_cast<std::int64_t>(!v.as_bool()));
        ++pc;
        break;
      }
      case Code::kBinary: {
        const Value b = s.stack.back();
        s.stack.pop_back();
        Value& a = s.stack.back();
        a = apply_binary(in.op, a, b);
        ++pc;
        break;
      }
      case Code::kBranchFalse: {
        const Value c = s.stack.back();
        s.stack.pop_back();
        pc = c.as_bool() ? pc + 1 : static_cast<std::size_t>(in.a);
        break;
      }
      case Code::kJump:
        pc = static_cast<std::size_t>(in.a);
        break;
      case Code::kSum: {
        const Value vhi = s.stack.back();
        s.stack.pop_back();
        const Value vlo = s.stack.back();
        s.stack.pop_back();
        const std::int64_t lo = vlo.as_int();
        const std::int64_t hi = vhi.as_int();
        const std::size_t slot = static_cast<std::size_t>(in.a);
        const std::size_t body_end = static_cast<std::size_t>(in.b);
        const std::uint8_t was_bound = s.bound[slot];
        const Value prev = s.slots[slot];
        s.bound[slot] = 1;
        double racc = 0.0;
        std::int64_t iacc = 0;
        bool all_int = true;
        for (std::int64_t i = lo; i <= hi; ++i) {
          s.slots[slot] = Value(i);
          const Value v = run(s, pc + 1, body_end);
          if (v.is_int() && all_int) {
            iacc += v.as_int();
          } else {
            if (all_int) {
              racc = static_cast<double>(iacc);
              all_int = false;
            }
            racc += v.as_real();
          }
        }
        s.bound[slot] = was_bound;
        s.slots[slot] = prev;
        s.stack.push_back(all_int ? Value(iacc) : Value(racc));
        pc = body_end;
        break;
      }
    }
  }
  STGSIM_DCHECK(s.stack.size() == base + 1);
  const Value result = s.stack.back();
  s.stack.pop_back();
  return result;
}

Value CompiledExpr::eval(Scratch& s) const {
  return run(s, 0, tape_.size());
}

Value CompiledExpr::eval(const Env& env) const {
  Scratch s;
  prepare(s);
  for (int slot : free_slots_) {
    auto v = env.lookup(slot_names_[static_cast<std::size_t>(slot)]);
    if (v) {
      s.slots[static_cast<std::size_t>(slot)] = *v;
      s.bound[static_cast<std::size_t>(slot)] = 1;
    }
  }
  return eval(s);
}

}  // namespace stgsim::sym
