// Compiled symbolic expressions: a flat postfix tape with slot-indexed
// variable bindings.
//
// The AM-mode hot loop evaluates the same scaling expressions millions of
// times (one delay() per eliminated compute block, loop bounds every
// iteration). Walking the shared_ptr DAG costs a virtual Env::lookup plus
// a string compare per variable per visit. CompiledExpr resolves every
// variable to a dense slot index once at compile time; evaluation is then
// a tight array walk over a vector of fixed-size instructions with a
// reusable operand stack — no allocation, no name lookups.
//
// Semantics are bit-identical to Expr::eval:
//   * int/real coercion per operator via the shared sym::apply_binary,
//   * `select` evaluates only the taken branch (jump instructions),
//   * kAnd/kOr evaluate both operands (as the tree walker does),
//   * `Sum` accumulates exactly like the tree walker (int until the first
//     real body value, then real), with the bound variable in its own
//     slot shadowing any free variable of the same name,
//   * reading an unbound slot throws EvalError, exactly when the tree
//     walker would (an unbound variable in an untaken branch is fine).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "symexpr/expr.hpp"

namespace stgsim::sym {

class CompiledExpr {
 public:
  CompiledExpr() = default;

  static CompiledExpr compile(const Expr& e);

  /// Total slots (free variables + Sum binders).
  int num_slots() const { return static_cast<int>(slot_names_.size()); }
  /// Variable name of each slot.
  const std::vector<std::string>& slot_names() const { return slot_names_; }
  /// Slots the caller must bind before eval (Sum binders excluded).
  const std::vector<int>& free_slots() const { return free_slots_; }

  /// True when the tape is a single variable load — callers holding the
  /// binding can then read the value directly instead of running the tape.
  bool single_load() const {
    return tape_.size() == 1 && tape_[0].code == Code::kLoad;
  }

  /// Reusable evaluation state: keep one per thread of evaluation and pass
  /// it to every eval call to avoid per-call allocation.
  struct Scratch {
    std::vector<Value> slots;
    std::vector<std::uint8_t> bound;
    std::vector<Value> stack;
  };

  /// Sizes scratch for this expression and clears all bindings. Bind free
  /// slots (slots[i] = v, bound[i] = 1) between prepare() and eval().
  void prepare(Scratch& s) const {
    s.slots.assign(slot_names_.size(), Value());
    s.bound.assign(slot_names_.size(), 0);
  }

  /// Evaluates the tape. Throws EvalError on use of an unbound slot or a
  /// domain error, mirroring the tree walker.
  Value eval(Scratch& s) const;

  /// Convenience (tests): binds free slots from `env`, then evaluates.
  /// Names missing from env stay unbound — an error only if actually read.
  Value eval(const Env& env) const;

 private:
  enum class Code : std::uint8_t {
    kConst,        // push consts_[a]
    kLoad,         // push slot a (throws if unbound)
    kNeg,          // arithmetic negate top of stack
    kNot,          // logical negate top of stack
    kBinary,       // pop b, a; push apply_binary(op, a, b)
    kBranchFalse,  // pop cond; if !cond jump to a
    kJump,         // jump to a
    kSum,          // pop hi, lo; loop body [pc+1, b) binding slot a
  };
  struct Inst {
    Code code;
    Op op = Op::kConst;   // kBinary only
    std::int32_t a = 0;   // const index / slot / jump target
    std::int32_t b = 0;   // kSum: pc one past the body
  };

  class Builder;

  Value run(Scratch& s, std::size_t pc, std::size_t end) const;

  std::vector<Inst> tape_;
  std::vector<Value> consts_;
  std::vector<std::string> slot_names_;
  std::vector<int> free_slots_;
};

}  // namespace stgsim::sym
