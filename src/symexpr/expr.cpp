#include "symexpr/expr.hpp"

#include <cmath>
#include <sstream>

namespace stgsim::sym {

Value apply_binary(Op op, const Value& a, const Value& b) {
  const bool both_int = a.is_int() && b.is_int();
  switch (op) {
    case Op::kAdd:
      if (both_int) return Value(a.as_int() + b.as_int());
      return Value(a.as_real() + b.as_real());
    case Op::kSub:
      if (both_int) return Value(a.as_int() - b.as_int());
      return Value(a.as_real() - b.as_real());
    case Op::kMul:
      if (both_int) return Value(a.as_int() * b.as_int());
      return Value(a.as_real() * b.as_real());
    case Op::kDiv: {
      const double d = b.as_real();
      if (d == 0.0) throw EvalError("division by zero");
      return Value(a.as_real() / d);
    }
    case Op::kIDiv: {
      const std::int64_t d = b.as_int();
      if (d == 0) throw EvalError("integer division by zero");
      return Value(a.as_int() / d);
    }
    case Op::kMod: {
      const std::int64_t d = b.as_int();
      if (d == 0) throw EvalError("modulus by zero");
      return Value(a.as_int() % d);
    }
    case Op::kCeilDiv: {
      const std::int64_t n = a.as_int();
      const std::int64_t d = b.as_int();
      if (d == 0) throw EvalError("ceil-division by zero");
      STGSIM_CHECK_GT(d, 0) << "ceil_div with non-positive divisor";
      // Works for negative numerators as well (floor toward -inf + adjust).
      const std::int64_t q = n / d;
      return Value(q + ((n % d != 0 && n > 0) ? 1 : 0));
    }
    case Op::kMin:
      if (both_int) return Value(std::min(a.as_int(), b.as_int()));
      return Value(std::min(a.as_real(), b.as_real()));
    case Op::kMax:
      if (both_int) return Value(std::max(a.as_int(), b.as_int()));
      return Value(std::max(a.as_real(), b.as_real()));
    case Op::kEq: return Value(static_cast<std::int64_t>(a == b));
    case Op::kNe: return Value(static_cast<std::int64_t>(!(a == b)));
    case Op::kLt: return Value(static_cast<std::int64_t>(a.as_real() < b.as_real()));
    case Op::kLe: return Value(static_cast<std::int64_t>(a.as_real() <= b.as_real()));
    case Op::kGt: return Value(static_cast<std::int64_t>(a.as_real() > b.as_real()));
    case Op::kGe: return Value(static_cast<std::int64_t>(a.as_real() >= b.as_real()));
    case Op::kAnd: return Value(static_cast<std::int64_t>(a.as_bool() && b.as_bool()));
    case Op::kOr: return Value(static_cast<std::int64_t>(a.as_bool() || b.as_bool()));
    default:
      STGSIM_UNREACHABLE("non-binary op in apply_binary");
  }
}

namespace {

/// Env wrapper that shadows one variable, used by kSum evaluation.
class ShadowEnv : public Env {
 public:
  ShadowEnv(const Env& base, const std::string& name, Value v)
      : base_(base), name_(name), value_(v) {}

  std::optional<Value> lookup(const std::string& name) const override {
    if (name == name_) return value_;
    return base_.lookup(name);
  }

 private:
  const Env& base_;
  const std::string& name_;
  Value value_;
};

Value eval_node(const Node& n, const Env& env) {
  switch (n.op) {
    case Op::kConst:
      return n.constant;
    case Op::kVar: {
      auto v = env.lookup(n.var);
      if (!v) throw EvalError("unbound variable '" + n.var + "'");
      return *v;
    }
    case Op::kNeg: {
      const Value v = eval_node(*n.children[0], env);
      if (v.is_int()) return Value(-v.as_int());
      return Value(-v.as_real());
    }
    case Op::kNot:
      return Value(static_cast<std::int64_t>(!eval_node(*n.children[0], env).as_bool()));
    case Op::kSelect: {
      const Value c = eval_node(*n.children[0], env);
      return eval_node(*n.children[c.as_bool() ? 1 : 2], env);
    }
    case Op::kSum: {
      const std::int64_t lo = eval_node(*n.children[0], env).as_int();
      const std::int64_t hi = eval_node(*n.children[1], env).as_int();
      // Fast path: affine body has a closed form; avoids O(trip count)
      // work when collapsed loops are evaluated at run time.
      double racc = 0.0;
      std::int64_t iacc = 0;
      bool all_int = true;
      for (std::int64_t i = lo; i <= hi; ++i) {
        ShadowEnv inner(env, n.var, Value(i));
        const Value v = eval_node(*n.children[2], inner);
        if (v.is_int() && all_int) {
          iacc += v.as_int();
        } else {
          if (all_int) {
            racc = static_cast<double>(iacc);
            all_int = false;
          }
          racc += v.as_real();
        }
      }
      if (all_int) return Value(iacc);
      return Value(racc);
    }
    default: {
      // Explicitly sequence left-to-right so which domain error fires
      // first is well-defined (and matches CompiledExpr's tape order).
      const Value a = eval_node(*n.children[0], env);
      const Value b = eval_node(*n.children[1], env);
      return apply_binary(n.op, a, b);
    }
  }
}

void collect_free_vars(const Node& n, std::set<std::string>& bound,
                       std::set<std::string>& out) {
  switch (n.op) {
    case Op::kConst:
      return;
    case Op::kVar:
      if (!bound.contains(n.var)) out.insert(n.var);
      return;
    case Op::kSum: {
      collect_free_vars(*n.children[0], bound, out);
      collect_free_vars(*n.children[1], bound, out);
      const bool newly_bound = bound.insert(n.var).second;
      collect_free_vars(*n.children[2], bound, out);
      if (newly_bound) bound.erase(n.var);
      return;
    }
    default:
      for (const auto& c : n.children) collect_free_vars(*c, bound, out);
  }
}

int precedence(Op op) {
  switch (op) {
    case Op::kOr: return 1;
    case Op::kAnd: return 2;
    case Op::kEq: case Op::kNe: case Op::kLt: case Op::kLe:
    case Op::kGt: case Op::kGe: return 3;
    case Op::kAdd: case Op::kSub: return 4;
    case Op::kMul: case Op::kDiv: case Op::kIDiv: case Op::kMod: return 5;
    case Op::kNeg: case Op::kNot: return 6;
    default: return 7;  // atoms and function-style ops
  }
}

const char* infix_symbol(Op op) {
  switch (op) {
    case Op::kAdd: return " + ";
    case Op::kSub: return " - ";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kIDiv: return " div ";
    case Op::kMod: return " mod ";
    case Op::kEq: return " == ";
    case Op::kNe: return " != ";
    case Op::kLt: return " < ";
    case Op::kLe: return " <= ";
    case Op::kGt: return " > ";
    case Op::kGe: return " >= ";
    case Op::kAnd: return " && ";
    case Op::kOr: return " || ";
    default: return nullptr;
  }
}

void render(const Node& n, std::ostringstream& os, int parent_prec) {
  const int prec = precedence(n.op);
  switch (n.op) {
    case Op::kConst: {
      if (n.constant.is_int()) {
        os << n.constant.as_int();
      } else {
        os << n.constant.as_real();
      }
      return;
    }
    case Op::kVar:
      os << n.var;
      return;
    case Op::kNeg:
      os << "-";
      render(*n.children[0], os, prec);
      return;
    case Op::kNot:
      os << "!";
      render(*n.children[0], os, prec);
      return;
    case Op::kCeilDiv:
    case Op::kMin:
    case Op::kMax: {
      os << (n.op == Op::kCeilDiv ? "ceil_div" : n.op == Op::kMin ? "min" : "max")
         << "(";
      render(*n.children[0], os, 0);
      os << ", ";
      render(*n.children[1], os, 0);
      os << ")";
      return;
    }
    case Op::kSelect: {
      os << "select(";
      render(*n.children[0], os, 0);
      os << ", ";
      render(*n.children[1], os, 0);
      os << ", ";
      render(*n.children[2], os, 0);
      os << ")";
      return;
    }
    case Op::kSum: {
      os << "sum(" << n.var << " = ";
      render(*n.children[0], os, 0);
      os << " .. ";
      render(*n.children[1], os, 0);
      os << ", ";
      render(*n.children[2], os, 0);
      os << ")";
      return;
    }
    default: {
      const bool need_parens = prec < parent_prec;
      if (need_parens) os << "(";
      render(*n.children[0], os, prec);
      os << infix_symbol(n.op);
      // Right child gets prec+1 so non-associative ops parenthesize.
      render(*n.children[1], os, prec + 1);
      if (need_parens) os << ")";
    }
  }
}

Expr make_binary(Op op, const Expr& a, const Expr& b) {
  return Expr(std::make_shared<Node>(
      op, std::vector<NodeP>{a.node_ptr(), b.node_ptr()}));
}

bool is_const_value(const Expr& e, double v) {
  auto c = e.constant_value();
  return c.has_value() && c->as_real() == v;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kVar: return "var";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kIDiv: return "idiv";
    case Op::kMod: return "mod";
    case Op::kCeilDiv: return "ceil_div";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kNeg: return "neg";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kNot: return "not";
    case Op::kSelect: return "select";
    case Op::kSum: return "sum";
  }
  return "?";
}

Expr::Expr() : node_(std::make_shared<Node>(Op::kConst, Value(std::int64_t{0}))) {}

Expr Expr::constant(Value v) {
  return Expr(std::make_shared<Node>(Op::kConst, v));
}

Expr Expr::var(const std::string& name) {
  STGSIM_CHECK(!name.empty());
  return Expr(std::make_shared<Node>(Op::kVar, name));
}

std::optional<Value> Expr::constant_value() const {
  if (node_->op != Op::kConst) return std::nullopt;
  return node_->constant;
}

Value Expr::eval(const Env& env) const { return eval_node(*node_, env); }

std::set<std::string> Expr::free_vars() const {
  std::set<std::string> bound;
  std::set<std::string> out;
  collect_free_vars(*node_, bound, out);
  return out;
}

bool Expr::references(const std::string& name) const {
  return free_vars().contains(name);
}

Expr Expr::substitute(const std::map<std::string, Expr>& repl) const {
  const Node& n = *node_;
  switch (n.op) {
    case Op::kConst:
      return *this;
    case Op::kVar: {
      auto it = repl.find(n.var);
      return it == repl.end() ? *this : it->second;
    }
    case Op::kSum: {
      // The bound variable shadows any replacement of the same name.
      std::map<std::string, Expr> inner = repl;
      inner.erase(n.var);
      Expr lo = Expr(n.children[0]).substitute(repl);
      Expr hi = Expr(n.children[1]).substitute(repl);
      Expr body = Expr(n.children[2]).substitute(inner);
      return sum(n.var, lo, hi, body);
    }
    default: {
      std::vector<NodeP> kids;
      kids.reserve(n.children.size());
      bool changed = false;
      for (const auto& c : n.children) {
        Expr sub = Expr(c).substitute(repl);
        changed = changed || sub.node_ptr() != c;
        kids.push_back(sub.node_ptr());
      }
      if (!changed) return *this;
      return Expr(std::make_shared<Node>(n.op, n.var, std::move(kids)));
    }
  }
}

Expr Expr::simplified() const {
  const Node& n = *node_;
  switch (n.op) {
    case Op::kConst:
    case Op::kVar:
      return *this;
    default:
      break;
  }

  std::vector<Expr> kids;
  kids.reserve(n.children.size());
  bool all_const = true;
  for (const auto& c : n.children) {
    kids.push_back(Expr(c).simplified());
    all_const = all_const && kids.back().is_constant();
  }

  // Sums are folded only when bounds are constant and the body is constant
  // (otherwise the bound variable is involved; leave for closed_form_sum).
  if (all_const && n.op != Op::kSum) {
    std::vector<NodeP> kid_nodes;
    for (const auto& k : kids) kid_nodes.push_back(k.node_ptr());
    Node folded(n.op, n.var, kid_nodes);
    MapEnv empty;
    return Expr::constant(eval_node(folded, empty));
  }

  // Algebraic identities.
  switch (n.op) {
    case Op::kAdd:
      if (is_const_value(kids[0], 0)) return kids[1];
      if (is_const_value(kids[1], 0)) return kids[0];
      break;
    case Op::kSub:
      if (is_const_value(kids[1], 0)) return kids[0];
      break;
    case Op::kMul:
      if (is_const_value(kids[0], 0) || is_const_value(kids[1], 0))
        return Expr::integer(0);
      if (is_const_value(kids[0], 1)) return kids[1];
      if (is_const_value(kids[1], 1)) return kids[0];
      break;
    case Op::kDiv:
    case Op::kIDiv:
      if (is_const_value(kids[1], 1)) return kids[0];
      break;
    case Op::kMin:
    case Op::kMax:
      if (kids[0].structurally_equal(kids[1])) return kids[0];
      break;
    case Op::kNeg:
      if (kids[0].op() == Op::kNeg) return Expr(kids[0].node().children[0]);
      break;
    case Op::kSelect:
      if (auto c = kids[0].constant_value()) {
        return c->as_bool() ? kids[1] : kids[2];
      }
      if (kids[1].structurally_equal(kids[2])) return kids[1];
      break;
    default:
      break;
  }

  std::vector<NodeP> kid_nodes;
  for (const auto& k : kids) kid_nodes.push_back(k.node_ptr());
  return Expr(std::make_shared<Node>(n.op, n.var, std::move(kid_nodes)));
}

bool Expr::structurally_equal(const Expr& other) const {
  std::function<bool(const Node&, const Node&)> eq_fn =
      [&](const Node& a, const Node& b) -> bool {
    if (a.op != b.op) return false;
    switch (a.op) {
      case Op::kConst:
        return a.constant == b.constant;
      case Op::kVar:
        return a.var == b.var;
      default:
        break;
    }
    if (a.op == Op::kSum && a.var != b.var) return false;
    if (a.children.size() != b.children.size()) return false;
    for (std::size_t i = 0; i < a.children.size(); ++i) {
      if (!eq_fn(*a.children[i], *b.children[i])) return false;
    }
    return true;
  };
  return eq_fn(*node_, *other.node_);
}

std::string Expr::to_string() const {
  std::ostringstream os;
  render(*node_, os, 0);
  return os.str();
}

Expr operator+(const Expr& a, const Expr& b) { return make_binary(Op::kAdd, a, b); }
Expr operator-(const Expr& a, const Expr& b) { return make_binary(Op::kSub, a, b); }
Expr operator*(const Expr& a, const Expr& b) { return make_binary(Op::kMul, a, b); }
Expr operator/(const Expr& a, const Expr& b) { return make_binary(Op::kDiv, a, b); }

Expr operator-(const Expr& a) {
  return Expr(std::make_shared<Node>(Op::kNeg, std::vector<NodeP>{a.node_ptr()}));
}

Expr idiv(const Expr& a, const Expr& b) { return make_binary(Op::kIDiv, a, b); }
Expr imod(const Expr& a, const Expr& b) { return make_binary(Op::kMod, a, b); }
Expr ceil_div(const Expr& a, const Expr& b) { return make_binary(Op::kCeilDiv, a, b); }
Expr min(const Expr& a, const Expr& b) { return make_binary(Op::kMin, a, b); }
Expr max(const Expr& a, const Expr& b) { return make_binary(Op::kMax, a, b); }

Expr eq(const Expr& a, const Expr& b) { return make_binary(Op::kEq, a, b); }
Expr ne(const Expr& a, const Expr& b) { return make_binary(Op::kNe, a, b); }
Expr lt(const Expr& a, const Expr& b) { return make_binary(Op::kLt, a, b); }
Expr le(const Expr& a, const Expr& b) { return make_binary(Op::kLe, a, b); }
Expr gt(const Expr& a, const Expr& b) { return make_binary(Op::kGt, a, b); }
Expr ge(const Expr& a, const Expr& b) { return make_binary(Op::kGe, a, b); }
Expr logical_and(const Expr& a, const Expr& b) { return make_binary(Op::kAnd, a, b); }
Expr logical_or(const Expr& a, const Expr& b) { return make_binary(Op::kOr, a, b); }

Expr logical_not(const Expr& a) {
  return Expr(std::make_shared<Node>(Op::kNot, std::vector<NodeP>{a.node_ptr()}));
}

Expr select(const Expr& cond, const Expr& then_e, const Expr& else_e) {
  return Expr(std::make_shared<Node>(
      Op::kSelect,
      std::vector<NodeP>{cond.node_ptr(), then_e.node_ptr(), else_e.node_ptr()}));
}

Expr sum(const std::string& var, const Expr& lo, const Expr& hi,
         const Expr& body) {
  STGSIM_CHECK(!var.empty());
  return Expr(std::make_shared<Node>(
      Op::kSum, var,
      std::vector<NodeP>{lo.node_ptr(), hi.node_ptr(), body.node_ptr()}));
}

std::optional<std::pair<Expr, Expr>> decompose_affine(const Expr& e,
                                                      const std::string& var) {
  if (!e.references(var)) {
    return std::make_pair(Expr::integer(0), e);
  }
  const Node& n = e.node();
  switch (n.op) {
    case Op::kVar:
      if (n.var == var) {
        return std::make_pair(Expr::integer(1), Expr::integer(0));
      }
      return std::nullopt;
    case Op::kAdd: {
      auto l = decompose_affine(Expr(n.children[0]), var);
      auto r = decompose_affine(Expr(n.children[1]), var);
      if (!l || !r) return std::nullopt;
      return std::make_pair((l->first + r->first).simplified(),
                            (l->second + r->second).simplified());
    }
    case Op::kSub: {
      auto l = decompose_affine(Expr(n.children[0]), var);
      auto r = decompose_affine(Expr(n.children[1]), var);
      if (!l || !r) return std::nullopt;
      return std::make_pair((l->first - r->first).simplified(),
                            (l->second - r->second).simplified());
    }
    case Op::kNeg: {
      auto c = decompose_affine(Expr(n.children[0]), var);
      if (!c) return std::nullopt;
      return std::make_pair((-c->first).simplified(), (-c->second).simplified());
    }
    case Op::kMul: {
      const Expr l(n.children[0]);
      const Expr r(n.children[1]);
      if (!l.references(var)) {
        auto c = decompose_affine(r, var);
        if (!c) return std::nullopt;
        return std::make_pair((l * c->first).simplified(),
                              (l * c->second).simplified());
      }
      if (!r.references(var)) {
        auto c = decompose_affine(l, var);
        if (!c) return std::nullopt;
        return std::make_pair((c->first * r).simplified(),
                              (c->second * r).simplified());
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

std::optional<Expr> closed_form_sum(const std::string& var, const Expr& lo,
                                    const Expr& hi, const Expr& body) {
  auto affine = decompose_affine(body, var);
  if (!affine) return std::nullopt;
  const Expr& a = affine->first;
  const Expr& b = affine->second;
  // count = max(hi - lo + 1, 0); sum var = count*(lo+hi)/2 — computed as
  // a*(lo+hi)*count/2 in the real domain to avoid parity concerns, then the
  // caller treats the result as an operation count (real-valued is fine).
  Expr count = max(hi - lo + 1, Expr::integer(0));
  Expr sum_var = (lo + hi) * count / Expr::integer(2);
  return (a * sum_var + b * count).simplified();
}

}  // namespace stgsim::sym
