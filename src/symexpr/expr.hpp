// Symbolic expressions.
//
// One expression language serves three roles in STGSim, mirroring the role
// symbolic expressions play in the dHPF-synthesized static task graph:
//   1. right-hand sides / bounds / conditions in the program IR,
//   2. scaling functions attached to STG compute nodes (paper §3.1),
//   3. communication patterns and sizes on STG communication nodes.
//
// Expressions are immutable DAG nodes held by shared_ptr; Expr is a small
// value-semantic handle. Integer and real arithmetic are distinguished
// (Fortran-style truncating integer division vs real division) because loop
// trip counts and process ids must stay exact.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace stgsim::sym {

/// Runtime value of an expression: an exact integer or a real.
class Value {
 public:
  Value() : is_int_(true), i_(0), d_(0.0) {}
  Value(std::int64_t v) : is_int_(true), i_(v), d_(static_cast<double>(v)) {}
  Value(int v) : Value(static_cast<std::int64_t>(v)) {}
  Value(double v) : is_int_(false), i_(0), d_(v) {}

  bool is_int() const { return is_int_; }
  double as_real() const { return is_int_ ? static_cast<double>(i_) : d_; }

  /// Integer view; a real value must be integral.
  std::int64_t as_int() const {
    if (is_int_) return i_;
    const auto r = static_cast<std::int64_t>(d_);
    STGSIM_CHECK(static_cast<double>(r) == d_)
        << "value " << d_ << " used as integer";
    return r;
  }

  bool as_bool() const { return as_real() != 0.0; }

  bool operator==(const Value& o) const {
    if (is_int_ && o.is_int_) return i_ == o.i_;
    return as_real() == o.as_real();
  }

 private:
  bool is_int_;
  std::int64_t i_;
  double d_;
};

/// Expression node kinds.
enum class Op {
  kConst,    // literal Value
  kVar,      // named variable
  kAdd, kSub, kMul,
  kDiv,      // real division
  kIDiv,     // truncating integer division
  kMod,      // integer modulus (C semantics)
  kCeilDiv,  // ceil(a / b) on integers
  kMin, kMax,
  kNeg,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kSelect,   // select(cond, a, b)
  kSum,      // sum_{var = lo .. hi} body
};

const char* op_name(Op op);

class Node;
using NodeP = std::shared_ptr<const Node>;

/// Immutable expression DAG node.
class Node {
 public:
  Op op;
  Value constant;               // kConst
  std::string var;              // kVar, and the bound variable of kSum
  std::vector<NodeP> children;  // operands; kSum: {lo, hi, body}

  Node(Op o, Value c) : op(o), constant(c) {}
  Node(Op o, std::string v) : op(o), var(std::move(v)) {}
  Node(Op o, std::vector<NodeP> ch) : op(o), children(std::move(ch)) {}
  Node(Op o, std::string v, std::vector<NodeP> ch)
      : op(o), var(std::move(v)), children(std::move(ch)) {}
};

/// Variable-resolution interface for evaluation.
class Env {
 public:
  virtual ~Env() = default;
  virtual std::optional<Value> lookup(const std::string& name) const = 0;
};

/// Env backed by a map; convenient for tests and calibration tables.
class MapEnv : public Env {
 public:
  MapEnv() = default;
  explicit MapEnv(std::map<std::string, Value> values)
      : values_(std::move(values)) {}

  void set(const std::string& name, Value v) { values_[name] = v; }

  std::optional<Value> lookup(const std::string& name) const override {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::string, Value> values_;
};

/// Thrown when evaluation hits an unbound variable or a domain error.
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& what) : std::runtime_error(what) {}
};

/// Applies a binary operator with the evaluator's exact coercion and
/// domain-error semantics (shared by the tree walker and CompiledExpr).
Value apply_binary(Op op, const Value& a, const Value& b);

/// Value-semantic handle to an expression DAG.
class Expr {
 public:
  /// Default-constructed Expr is the integer constant 0.
  Expr();
  explicit Expr(NodeP node) : node_(std::move(node)) {
    STGSIM_CHECK(node_ != nullptr);
  }

  // Literals and variables.
  static Expr constant(Value v);
  static Expr integer(std::int64_t v) { return constant(Value(v)); }
  static Expr real(double v) { return constant(Value(v)); }
  static Expr var(const std::string& name);

  const Node& node() const { return *node_; }
  NodeP node_ptr() const { return node_; }
  Op op() const { return node_->op; }

  bool is_constant() const { return node_->op == Op::kConst; }
  /// Constant value if this is a literal.
  std::optional<Value> constant_value() const;

  /// Evaluates against an environment; throws EvalError on unbound vars.
  Value eval(const Env& env) const;
  double eval_real(const Env& env) const { return eval(env).as_real(); }
  std::int64_t eval_int(const Env& env) const { return eval(env).as_int(); }

  /// All free variables (Sum's bound variable is not free in its body).
  std::set<std::string> free_vars() const;
  bool references(const std::string& name) const;

  /// Replaces free variables by expressions.
  Expr substitute(const std::map<std::string, Expr>& repl) const;

  /// Constant folding + light algebraic identities (x+0, x*1, x*0,
  /// min/max of equal operands, double negation, constant selects).
  Expr simplified() const;

  /// Structural equality (after no normalization; use simplified() first
  /// when comparing rewritten expressions).
  bool structurally_equal(const Expr& other) const;

  /// Human-readable rendering with minimal parentheses.
  std::string to_string() const;

 private:
  NodeP node_;
};

// -- Builders -------------------------------------------------------------

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator*(const Expr& a, const Expr& b);
Expr operator/(const Expr& a, const Expr& b);  // real division
Expr operator-(const Expr& a);

Expr idiv(const Expr& a, const Expr& b);
Expr imod(const Expr& a, const Expr& b);
Expr ceil_div(const Expr& a, const Expr& b);
Expr min(const Expr& a, const Expr& b);
Expr max(const Expr& a, const Expr& b);

Expr eq(const Expr& a, const Expr& b);
Expr ne(const Expr& a, const Expr& b);
Expr lt(const Expr& a, const Expr& b);
Expr le(const Expr& a, const Expr& b);
Expr gt(const Expr& a, const Expr& b);
Expr ge(const Expr& a, const Expr& b);
Expr logical_and(const Expr& a, const Expr& b);
Expr logical_or(const Expr& a, const Expr& b);
Expr logical_not(const Expr& a);
Expr select(const Expr& cond, const Expr& then_e, const Expr& else_e);

/// sum_{var = lo .. hi} body (inclusive bounds; empty when hi < lo).
Expr sum(const std::string& var, const Expr& lo, const Expr& hi,
         const Expr& body);

// Mixed-literal conveniences.
inline Expr operator+(const Expr& a, std::int64_t b) { return a + Expr::integer(b); }
inline Expr operator+(std::int64_t a, const Expr& b) { return Expr::integer(a) + b; }
inline Expr operator-(const Expr& a, std::int64_t b) { return a - Expr::integer(b); }
inline Expr operator-(std::int64_t a, const Expr& b) { return Expr::integer(a) - b; }
inline Expr operator*(const Expr& a, std::int64_t b) { return a * Expr::integer(b); }
inline Expr operator*(std::int64_t a, const Expr& b) { return Expr::integer(a) * b; }

/// If `body` is affine in `var` (a*var + b with a, b free of var), returns
/// the closed form of sum_{var=lo..hi} body; otherwise nullopt. Used by the
/// code generator to collapse whole loop nests into one delay (paper §3.1).
std::optional<Expr> closed_form_sum(const std::string& var, const Expr& lo,
                                    const Expr& hi, const Expr& body);

/// Decomposes `e` as (a, b) with e == a*var + b, a and b free of `var`.
std::optional<std::pair<Expr, Expr>> decompose_affine(const Expr& e,
                                                      const std::string& var);

}  // namespace stgsim::sym
