// Application-level tests: each benchmark builds, runs under direct
// execution, matches its analytic communication oracle, and — the paper's
// key contract — its compiler-simplified version communicates identically.
#include <gtest/gtest.h>

#include "apps/nas_sp.hpp"
#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "testutil.hpp"

namespace stgsim {
namespace {

const harness::MachineSpec kSP = harness::ibm_sp_machine();
const harness::MachineSpec kO2K = harness::origin2000_machine();

// ---------------------------------------------------------------------------
// Tomcatv
// ---------------------------------------------------------------------------

apps::TomcatvConfig small_tomcatv() {
  apps::TomcatvConfig c;
  c.n = 128;
  c.iterations = 3;
  return c;
}

TEST(Tomcatv, BuildsAndValidates) {
  ir::Program p = apps::make_tomcatv(small_tomcatv());
  p.validate();
  EXPECT_FALSE(p.to_string().empty());
}

TEST(Tomcatv, MessageCountMatchesOracle) {
  const auto cfg = small_tomcatv();
  const int nprocs = 4;
  auto run = testutil::run_traced(apps::make_tomcatv(cfg), nprocs, kSP);
  for (int r = 0; r < nprocs; ++r) {
    EXPECT_EQ(run.rank_stats[static_cast<std::size_t>(r)].sends,
              apps::tomcatv_expected_isends(cfg, nprocs, r))
        << "rank " << r;
  }
}

TEST(Tomcatv, MemoryMatchesOracle) {
  const auto cfg = small_tomcatv();
  const int nprocs = 4;
  auto run = testutil::run_traced(apps::make_tomcatv(cfg), nprocs, kSP);
  EXPECT_EQ(run.result.peak_target_bytes,
            static_cast<std::size_t>(nprocs) *
                apps::tomcatv_rank_bytes(cfg, nprocs));
}

TEST(Tomcatv, SimplifiedProgramCommunicatesIdentically) {
  EXPECT_EQ(testutil::am_trace_divergence(apps::make_tomcatv(small_tomcatv()),
                                          4, kSP),
            "");
}

TEST(Tomcatv, SliceEliminatesAllMeshArrays) {
  auto compiled = core::compile(apps::make_tomcatv(small_tomcatv()));
  for (const char* a : {"X", "Y", "RX", "RY"}) {
    EXPECT_FALSE(compiled.slice.array_is_live(a)) << a;
  }
}

// ---------------------------------------------------------------------------
// Sweep3D
// ---------------------------------------------------------------------------

apps::Sweep3DConfig small_sweep() {
  apps::Sweep3DConfig c;
  c.it = 3;
  c.jt = 3;
  c.kt = 12;
  c.kb = 4;
  c.mm = 2;
  c.mmi = 1;
  c.timesteps = 1;
  c.npe_i = 2;
  c.npe_j = 3;
  return c;
}

TEST(Sweep3D, BuildsAndValidates) {
  ir::Program p = apps::make_sweep3d(small_sweep());
  p.validate();
}

TEST(Sweep3D, MessageCountMatchesOracle) {
  const auto cfg = small_sweep();
  const int nprocs = cfg.npe_i * cfg.npe_j;
  auto run = testutil::run_traced(apps::make_sweep3d(cfg), nprocs, kSP);
  for (int r = 0; r < nprocs; ++r) {
    const int ip = r % cfg.npe_i;
    const int jp = r / cfg.npe_i;
    EXPECT_EQ(run.rank_stats[static_cast<std::size_t>(r)].sends,
              apps::sweep3d_expected_sends(cfg, ip, jp))
        << "rank " << r;
  }
}

TEST(Sweep3D, WavefrontPipelinesAcrossGrid) {
  // Corner rank 0 must finish earlier than the far corner in a single
  // sweep direction mix; more usefully: completion times are not all
  // equal (the pipeline has a fill/drain skew).
  const auto cfg = small_sweep();
  const int nprocs = cfg.npe_i * cfg.npe_j;
  auto run = testutil::run_traced(apps::make_sweep3d(cfg), nprocs, kSP);
  EXPECT_GT(run.result.completion, 0);
  EXPECT_EQ(run.result.per_rank_completion.size(),
            static_cast<std::size_t>(nprocs));
}

TEST(Sweep3D, SimplifiedProgramCommunicatesIdentically) {
  const auto cfg = small_sweep();
  EXPECT_EQ(testutil::am_trace_divergence(apps::make_sweep3d(cfg),
                                          cfg.npe_i * cfg.npe_j, kSP),
            "");
}

TEST(Sweep3D, GridFactorizationIsNearSquare) {
  int pi = 0, pj = 0;
  apps::sweep3d_grid_for(64, &pi, &pj);
  EXPECT_EQ(pi * pj, 64);
  EXPECT_EQ(pi, 8);
  apps::sweep3d_grid_for(20000, &pi, &pj);
  EXPECT_EQ(pi * pj, 20000);
  EXPECT_LE(pi, pj);
  apps::sweep3d_grid_for(7, &pi, &pj);
  EXPECT_EQ(pi, 1);
  EXPECT_EQ(pj, 7);
}

TEST(Sweep3D, FixupBranchMakesDEDataDependent) {
  // The sweep kernel charges extra flops on the observed negative-source
  // fraction; the compiled model folds it into w_i. Both must be close at
  // the calibration configuration.
  const auto cfg = small_sweep();
  const int nprocs = cfg.npe_i * cfg.npe_j;
  ir::Program prog = apps::make_sweep3d(cfg);
  auto compiled = core::compile(prog);
  const auto params = harness::calibrate(compiled.timer_program, nprocs, kSP);
  EXPECT_TRUE(params.contains("w_sw_sweep"));
  EXPECT_GT(params.at("w_sw_sweep"), 0.0);
}

// ---------------------------------------------------------------------------
// NAS SP
// ---------------------------------------------------------------------------

apps::NasSpConfig small_sp() {
  apps::NasSpConfig c;
  c.grid = 17;  // not divisible by q: exercises the remainder path
  c.q = 2;
  c.timesteps = 2;
  return c;
}

TEST(NasSp, BuildsAndValidates) {
  ir::Program p = apps::make_nas_sp(small_sp());
  p.validate();
}

TEST(NasSp, ClassTableMatchesNpbSpec) {
  EXPECT_EQ(apps::sp_class('A', 2, 1).grid, 64);
  EXPECT_EQ(apps::sp_class('B', 2, 1).grid, 102);
  EXPECT_EQ(apps::sp_class('C', 2, 1).grid, 162);
}

TEST(NasSp, MessageCountMatchesOracle) {
  const auto cfg = small_sp();
  const int nprocs = cfg.q * cfg.q;
  auto run = testutil::run_traced(apps::make_nas_sp(cfg), nprocs, kSP);
  for (int r = 0; r < nprocs; ++r) {
    EXPECT_EQ(run.rank_stats[static_cast<std::size_t>(r)].sends,
              apps::nas_sp_expected_sends(cfg, r))
        << "rank " << r;
  }
}

TEST(NasSp, SimplifiedProgramCommunicatesIdentically) {
  const auto cfg = small_sp();
  EXPECT_EQ(
      testutil::am_trace_divergence(apps::make_nas_sp(cfg), cfg.q * cfg.q, kSP),
      "");
}

TEST(NasSp, ZSolveRetainsExecutableSymbolicSum) {
  // The multipartition stage sizes are non-affine in the stage index, so
  // the condensed cost must contain a symbolic sum (or a retained loop) —
  // the paper's SP-specific observation (§3.3).
  auto compiled = core::compile(apps::make_nas_sp(small_sp()));
  bool found_sum = false;
  for (const auto& ct : compiled.simplified.condensed) {
    std::function<void(const sym::Node&)> walk = [&](const sym::Node& n) {
      if (n.op == sym::Op::kSum) found_sum = true;
      for (const auto& c : n.children) walk(*c);
    };
    walk(ct.seconds.node());
  }
  EXPECT_TRUE(found_sum);
}

// ---------------------------------------------------------------------------
// SAMPLE
// ---------------------------------------------------------------------------

TEST(Sample, BothPatternsBuildAndRun) {
  for (auto pattern :
       {apps::SamplePattern::kWavefront, apps::SamplePattern::kNearestNeighbor}) {
    apps::SampleConfig cfg;
    cfg.pattern = pattern;
    cfg.iterations = 5;
    cfg.msg_doubles = 256;
    cfg.work_iters = 5000;
    auto run = testutil::run_traced(apps::make_sample(cfg), 4, kO2K);
    EXPECT_GT(run.result.completion, 0) << apps::sample_pattern_name(pattern);
  }
}

TEST(Sample, WavefrontCompletionIncreasesWithRank) {
  apps::SampleConfig cfg;
  cfg.pattern = apps::SamplePattern::kWavefront;
  cfg.iterations = 10;
  cfg.msg_doubles = 128;
  cfg.work_iters = 20000;
  auto run = testutil::run_traced(apps::make_sample(cfg), 6, kO2K);
  // The pipeline drains toward higher ranks: strictly later completions.
  for (std::size_t r = 1; r < run.result.per_rank_completion.size(); ++r) {
    EXPECT_GT(run.result.per_rank_completion[r],
              run.result.per_rank_completion[r - 1])
        << "rank " << r;
  }
}

TEST(Sample, SimplifiedProgramCommunicatesIdentically) {
  for (auto pattern :
       {apps::SamplePattern::kWavefront, apps::SamplePattern::kNearestNeighbor}) {
    apps::SampleConfig cfg;
    cfg.pattern = pattern;
    cfg.iterations = 4;
    cfg.msg_doubles = 512;
    cfg.work_iters = 10000;
    EXPECT_EQ(testutil::am_trace_divergence(apps::make_sample(cfg), 4, kO2K),
              "")
        << apps::sample_pattern_name(pattern);
  }
}

TEST(Sample, WorkForRatioProducesRequestedBalance) {
  const auto machine = kO2K;
  const std::int64_t msg = 1024;
  for (double ratio : {1.0, 10.0, 100.0, 1000.0}) {
    const std::int64_t work =
        apps::sample_work_for_ratio(machine.net, machine.compute, msg, ratio);
    const double comp =
        static_cast<double>(work) *
        machine::seconds_per_iteration(machine.compute, 4.0, 0.0);
    const double comm =
        vtime_to_sec(machine.net.latency + machine.net.send_overhead +
                     machine.net.recv_overhead) +
        static_cast<double>(msg) * 8.0 / machine.net.bytes_per_sec;
    EXPECT_NEAR(comp / comm, ratio, 0.05 * ratio + 1.0) << "ratio " << ratio;
  }
}

}  // namespace
}  // namespace stgsim
