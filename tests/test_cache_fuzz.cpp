// Torn-write robustness of the campaign result cache.
//
// A campaign resumed after a crash (or run over a flaky disk) may find
// cache entries truncated at any byte or with arbitrary bits flipped. The
// contract is corrupt-entry-as-miss: load() never throws and never
// returns damaged data — any entry that is not byte-for-byte trustworthy
// reads as nullopt and the run simply re-executes. These tests enforce
// that at every single byte offset of a representative entry, and then at
// the campaign level: a corrupted entry must not poison report.json.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "campaign/cache.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "support/json.hpp"

namespace stgsim {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test; removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("stgsim-fuzz-" + tag + "-" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A representative cache payload: the shape the campaign runner stores
/// (spec + outcome), with enough numeric fields that single-bit damage
/// inside a digit can keep the file parseable.
json::Value sample_payload() {
  return json::Value::parse(R"({
    "kind": "run",
    "outcome": {
      "messages": 1234,
      "predicted_time": 2964110000,
      "status": "ok"
    },
    "spec": {"app": "sample", "mode": "de", "procs": 4, "seed": 11}
  })");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---------------------------------------------------------------------------
// Entry-level fuzzing
// ---------------------------------------------------------------------------

TEST(CacheFuzz, RoundTripsIntactEntries) {
  ScratchDir dir("roundtrip");
  campaign::ResultCache cache(dir.path());
  const json::Value doc = sample_payload();
  cache.store("deadbeef", doc);
  const auto loaded = cache.load("deadbeef");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->dump(), doc.dump());
}

TEST(CacheFuzz, TruncationAtEveryOffsetIsAMissNeverACrash) {
  ScratchDir dir("truncate");
  campaign::ResultCache cache(dir.path());
  const json::Value doc = sample_payload();
  cache.store("deadbeef", doc);
  const std::string intact = slurp(cache.path_for("deadbeef"));
  ASSERT_GT(intact.size(), 0u);

  for (std::size_t len = 0; len < intact.size(); ++len) {
    spew(cache.path_for("deadbeef"), intact.substr(0, len));
    std::optional<json::Value> loaded;
    ASSERT_NO_THROW(loaded = cache.load("deadbeef")) << "len=" << len;
    if (loaded.has_value()) {
      // Cutting only trailing whitespace leaves the entry semantically
      // intact; any prefix that lost payload bytes must fail its
      // checksum — that closes the "truncated but still valid JSON"
      // hole a pure parse check leaves open.
      EXPECT_EQ(loaded->dump(), doc.dump()) << "len=" << len;
    }
  }
}

TEST(CacheFuzz, BitFlipAtEveryOffsetIsAMissOrTheOriginal) {
  ScratchDir dir("bitflip");
  campaign::ResultCache cache(dir.path());
  const json::Value doc = sample_payload();
  cache.store("deadbeef", doc);
  const std::string intact = slurp(cache.path_for("deadbeef"));
  const std::string canonical = doc.dump();

  for (std::size_t off = 0; off < intact.size(); ++off) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = intact;
      damaged[off] = static_cast<char>(damaged[off] ^ (1 << bit));
      spew(cache.path_for("deadbeef"), damaged);
      std::optional<json::Value> loaded;
      ASSERT_NO_THROW(loaded = cache.load("deadbeef"))
          << "off=" << off << " bit=" << bit;
      if (loaded.has_value()) {
        // Flips in whitespace/indentation can leave the entry
        // semantically intact; anything else must be a miss.
        EXPECT_EQ(loaded->dump(), canonical)
            << "off=" << off << " bit=" << bit
            << ": corrupted payload served as a hit";
      }
    }
  }
}

TEST(CacheFuzz, PreEnvelopeEntriesReadAsMisses) {
  ScratchDir dir("legacy");
  campaign::ResultCache cache(dir.path());
  // A raw payload written by a pre-checksum build: valid JSON, no
  // envelope. Trusting it would mean trusting unverifiable bytes.
  spew(cache.path_for("deadbeef"), sample_payload().dump(2));
  EXPECT_FALSE(cache.load("deadbeef").has_value());
  // And an envelope whose checksum lies about its payload.
  json::Value env = json::Value::object();
  env.set("checksum", "0000000000000000");
  env.set("payload", sample_payload());
  spew(cache.path_for("deadbeef"), env.dump(2));
  EXPECT_FALSE(cache.load("deadbeef").has_value());
}

// ---------------------------------------------------------------------------
// Campaign-level: corruption must not poison report.json
// ---------------------------------------------------------------------------

TEST(CacheFuzz, CorruptedEntriesNeverPoisonCampaignReports) {
  ScratchDir dir("campaign");
  const campaign::Scenario scenario =
      campaign::parse_scenario(json::Value::parse(R"({
        "name": "fuzz-campaign",
        "defaults": {"machine": "ibm_sp", "seed": 11},
        "sweeps": [{
          "app": "sample",
          "options": {"iters": 2, "work": 2000},
          "procs": [2],
          "mode": ["de"]
        }]
      })"));
  campaign::CampaignOptions opts;
  opts.cache_dir = dir.path();

  const campaign::CampaignResult clean = run_campaign(scenario, opts);
  ASSERT_EQ(clean.runs.size(), 1u);
  ASSERT_TRUE(clean.runs[0].outcome.ok());
  const std::string baseline = campaign::report_json(clean).dump();
  const std::string entry_path =
      campaign::ResultCache(dir.path()).path_for(clean.runs[0].digest_hex);
  const std::string intact = slurp(entry_path);
  ASSERT_GT(intact.size(), 0u);

  // Flip one bit per sampled byte across the whole entry. Every re-run
  // must either hit an intact-equivalent entry or re-execute — and in
  // both cases produce a report byte-identical to the clean baseline.
  for (std::size_t off = 0; off < intact.size(); off += 7) {
    std::string damaged = intact;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x10);
    spew(entry_path, damaged);
    const campaign::CampaignResult rerun = run_campaign(scenario, opts);
    ASSERT_EQ(rerun.runs.size(), 1u);
    EXPECT_TRUE(rerun.runs[0].outcome.ok()) << "off=" << off;
    EXPECT_EQ(campaign::report_json(rerun).dump(), baseline)
        << "off=" << off << ": corruption leaked into report.json";
  }

  // Truncations, same contract.
  for (std::size_t len = 0; len < intact.size(); len += 11) {
    spew(entry_path, intact.substr(0, len));
    const campaign::CampaignResult rerun = run_campaign(scenario, opts);
    EXPECT_EQ(campaign::report_json(rerun).dump(), baseline)
        << "len=" << len;
  }
}

}  // namespace
}  // namespace stgsim
