// Tests for the campaign subsystem: scenario expansion, the
// content-addressed result cache (hit / miss / invalidation / resume), the
// determinism contract of the aggregate reports, and the equivalence of
// campaign-executed runs with direct harness runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "campaign/cache.hpp"
#include "campaign/exec.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "core/compiler.hpp"
#include "harness/digest.hpp"
#include "harness/runner.hpp"

namespace stgsim {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test; removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("stgsim-test-" + tag + "-" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string sub(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

/// Small, fast scenario: sample app, measured + de + am across two sizes,
/// one shared calibration.
json::Value small_scenario() {
  return json::Value::parse(R"({
    "name": "test-campaign",
    "defaults": {"machine": "ibm_sp", "seed": 11},
    "sweeps": [
      {
        "app": "sample",
        "options": {"iters": 3, "work": 2000},
        "procs": [2, 4],
        "mode": ["measured", "de", "am"],
        "calibrate": 2
      }
    ]
  })");
}

// ---------------------------------------------------------------------------
// Scenario expansion
// ---------------------------------------------------------------------------

TEST(Scenario, ExpandsCrossProductDeterministically) {
  const campaign::Scenario s = campaign::parse_scenario(small_scenario());
  EXPECT_EQ(s.name, "test-campaign");
  ASSERT_EQ(s.runs.size(), 6u);
  // Axes iterate in sorted key order (mode before procs), values in file
  // order, so the expansion order is fixed.
  EXPECT_EQ(s.runs[0].id, "000-sample-p2-measured");
  EXPECT_EQ(s.runs[1].id, "001-sample-p4-measured");
  EXPECT_EQ(s.runs[2].id, "002-sample-p2-de");
  EXPECT_EQ(s.runs[5].id, "005-sample-p4-am");
  // One deduplicated calibration, referenced by both am runs.
  ASSERT_EQ(s.calibrations.size(), 1u);
  EXPECT_EQ(s.runs[4].calibration, 0);
  EXPECT_EQ(s.runs[5].calibration, 0);
  EXPECT_EQ(s.runs[0].calibration, -1);
  // Same document → same scenario digest.
  EXPECT_EQ(campaign::parse_scenario(small_scenario()).digest_hex,
            s.digest_hex);
}

TEST(Scenario, DefaultsMergeAndExplicitRunsJoinSweeps) {
  const json::Value doc = json::Value::parse(R"({
    "name": "mix",
    "defaults": {"app": "sample", "seed": 3, "options": {"work": 1000}},
    "runs": [ {"procs": 2, "mode": "de", "options": {"iters": 2}} ],
    "sweeps": [ {"procs": [2], "mode": ["de"]} ]
  })");
  const campaign::Scenario s = campaign::parse_scenario(doc);
  ASSERT_EQ(s.runs.size(), 2u);
  // Explicit runs come first; one-level option merge keeps the default.
  EXPECT_EQ(s.runs[0].spec.app_options.at("work"), "1000");
  EXPECT_EQ(s.runs[0].spec.app_options.at("iters"), "2");
  EXPECT_EQ(s.runs[0].spec.config.seed, 3u);
}

TEST(Scenario, SchemaViolationsAreStructuredErrors) {
  // Unknown top-level key.
  EXPECT_THROW(campaign::parse_scenario(json::Value::parse(
                   R"({"name":"x","swoops":[]})")),
               std::runtime_error);
  // Missing name.
  EXPECT_THROW(
      campaign::parse_scenario(json::Value::parse(R"({"sweeps":[]})")),
      std::runtime_error);
  // Empty sweep axis.
  EXPECT_THROW(campaign::parse_scenario(json::Value::parse(
                   R"({"name":"x","sweeps":[{"app":"sample","procs":[]}]})")),
               std::runtime_error);
  // Analytical sweep without calibrate or params.
  EXPECT_THROW(
      campaign::parse_scenario(json::Value::parse(
          R"({"name":"x","sweeps":[{"app":"sample","procs":[2],"mode":["am"]}]})")),
      std::runtime_error);
  // Measured mode is sequential-only.
  EXPECT_THROW(
      campaign::parse_scenario(json::Value::parse(
          R"({"name":"x","sweeps":[{"app":"sample","procs":[2],"mode":["measured"],"workers":2}]})")),
      std::runtime_error);
  // Unknown app surfaces with run context.
  EXPECT_THROW(campaign::parse_scenario(json::Value::parse(
                   R"({"name":"x","sweeps":[{"app":"nope","procs":[2]}]})")),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(ResultCache, StoresLoadsAndInvalidates) {
  ScratchDir dir("cache");
  campaign::ResultCache cache(dir.sub("c"));
  EXPECT_FALSE(cache.contains("00ff"));
  EXPECT_FALSE(cache.load("00ff").has_value());

  json::Value doc = json::Value::object();
  doc.set("k", json::Value(1));
  cache.store("00ff", doc);
  EXPECT_TRUE(cache.contains("00ff"));
  ASSERT_TRUE(cache.load("00ff").has_value());
  EXPECT_EQ(*cache.load("00ff"), doc);

  cache.remove("00ff");
  EXPECT_FALSE(cache.contains("00ff"));
}

TEST(ResultCache, CorruptEntriesReadAsMisses) {
  ScratchDir dir("corrupt");
  campaign::ResultCache cache(dir.sub("c"));
  cache.store("dead", json::Value::object());
  // Truncate the entry mid-document.
  std::ofstream(cache.path_for("dead"), std::ios::trunc) << "{\"torn\":";
  EXPECT_FALSE(cache.load("dead").has_value());
}

TEST(ResultCache, FailedFinalizeIsACacheSkipNotAnError) {
  ScratchDir dir("rename-fail");
  campaign::ResultCache cache(dir.sub("c"));
  // Occupy the entry's final path with a non-empty directory so the
  // finalize rename cannot succeed (mirrors a concurrent process or a
  // cache directory going bad mid-campaign).
  fs::create_directories(fs::path(cache.path_for("beef")) / "occupied");
  json::Value doc = json::Value::object();
  doc.set("k", json::Value(2));
  EXPECT_NO_THROW(cache.store("beef", doc));
  // The failed store reads as a miss, and no tmp litter is left behind.
  EXPECT_FALSE(cache.load("beef").has_value());
  for (const auto& e : fs::directory_iterator(cache.dir())) {
    EXPECT_EQ(e.path().string().find(".tmp."), std::string::npos)
        << e.path();
  }
}

TEST(ResultCache, ConcurrentStoresOfOneKeyNeverTearTheEntry) {
  ScratchDir dir("concurrent");
  campaign::ResultCache cache(dir.sub("c"));
  json::Value doc = json::Value::object();
  doc.set("payload", json::Value(std::string(4096, 'x')));
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) cache.store("cafe", doc);
    });
  }
  for (auto& w : writers) w.join();
  // Every interleaving of pid+counter-suffixed tmp files must finalize to
  // a readable, checksum-valid entry.
  ASSERT_TRUE(cache.load("cafe").has_value());
  EXPECT_EQ(*cache.load("cafe"), doc);
}

// ---------------------------------------------------------------------------
// Campaign execution + caching
// ---------------------------------------------------------------------------

TEST(Campaign, SecondInvocationIsAllCacheHitsWithIdenticalReports) {
  ScratchDir dir("rerun");
  const campaign::Scenario s = campaign::parse_scenario(small_scenario());
  campaign::CampaignOptions opts;
  opts.cache_dir = dir.sub("cache");
  opts.jobs = 2;

  const campaign::CampaignResult first = campaign::run_campaign(s, opts);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.executed, 6u);
  EXPECT_EQ(first.calibrations_run, 1u);
  for (const auto& r : first.runs) {
    EXPECT_TRUE(r.outcome.ok()) << r.id << ": " << r.outcome.diagnostic;
  }

  const campaign::CampaignResult second = campaign::run_campaign(s, opts);
  EXPECT_EQ(second.cache_hits, 6u);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.calibrations_run, 0u);
  EXPECT_EQ(second.calibrations_cached, 1u);

  // The determinism contract: byte-identical aggregate reports.
  EXPECT_EQ(campaign::report_json(second).dump(2),
            campaign::report_json(first).dump(2));
  EXPECT_EQ(campaign::report_csv(second), campaign::report_csv(first));
}

TEST(Campaign, ParallelAndSerialExecutionProduceTheSameReport) {
  const campaign::Scenario s = campaign::parse_scenario(small_scenario());
  ScratchDir dir("par");
  campaign::CampaignOptions serial;
  serial.cache_dir = dir.sub("serial");
  serial.jobs = 1;
  campaign::CampaignOptions parallel;
  parallel.cache_dir = dir.sub("parallel");
  parallel.jobs = 4;

  const campaign::CampaignResult a = campaign::run_campaign(s, serial);
  const campaign::CampaignResult b = campaign::run_campaign(s, parallel);
  EXPECT_EQ(campaign::report_json(a).dump(2), campaign::report_json(b).dump(2));
  EXPECT_EQ(campaign::report_csv(a), campaign::report_csv(b));
}

TEST(Campaign, ChangedSeedMachineOrFaultMissesTheCache) {
  ScratchDir dir("invalidate");
  campaign::CampaignOptions opts;
  opts.cache_dir = dir.sub("cache");

  const campaign::Scenario base = campaign::parse_scenario(small_scenario());
  (void)campaign::run_campaign(base, opts);

  auto run_variant = [&](const char* key, const json::Value& value) {
    json::Value doc = small_scenario();
    json::Value defaults = doc.at("defaults");
    defaults.set(key, value);
    doc.set("defaults", defaults);
    return campaign::run_campaign(campaign::parse_scenario(doc), opts);
  };

  // Same scenario again: all hits.
  EXPECT_EQ(campaign::run_campaign(base, opts).cache_hits, 6u);
  // Different seed: every run (and the calibration) re-executes.
  const campaign::CampaignResult seed =
      run_variant("seed", json::Value(12));
  EXPECT_EQ(seed.cache_hits, 0u);
  EXPECT_EQ(seed.calibrations_run, 1u);
  // Different machine (an override counts): all misses.
  const campaign::CampaignResult machine =
      run_variant("machine", json::Value("ibm_sp[latency_us=200]"));
  EXPECT_EQ(machine.cache_hits, 0u);
  // A fault plan: all misses.
  const campaign::CampaignResult faulted =
      run_variant("fault", json::Value("straggler:rank=0,factor=2"));
  EXPECT_EQ(faulted.cache_hits, 0u);
  // And the original is still fully cached afterwards.
  EXPECT_EQ(campaign::run_campaign(base, opts).cache_hits, 6u);
}

TEST(Campaign, ResumeReExecutesOnlyMissingEntries) {
  ScratchDir dir("resume");
  campaign::CampaignOptions opts;
  opts.cache_dir = dir.sub("cache");
  const campaign::Scenario s = campaign::parse_scenario(small_scenario());
  const campaign::CampaignResult first = campaign::run_campaign(s, opts);

  // Simulate a campaign killed mid-way: two result entries never landed.
  campaign::ResultCache cache(opts.cache_dir);
  cache.remove(first.runs[1].digest_hex);
  cache.remove(first.runs[4].digest_hex);

  const campaign::CampaignResult resumed = campaign::run_campaign(s, opts);
  EXPECT_EQ(resumed.cache_hits, 4u);
  EXPECT_EQ(resumed.executed, 2u);
  EXPECT_EQ(resumed.calibrations_cached, 1u);
  // Re-executed runs reproduce the identical results.
  EXPECT_EQ(campaign::report_json(resumed).dump(2),
            campaign::report_json(first).dump(2));
}

TEST(Campaign, RunDigestsMatchDirectHarnessExecution) {
  ScratchDir dir("digest");
  campaign::CampaignOptions opts;
  opts.cache_dir = dir.sub("cache");
  const campaign::Scenario s = campaign::parse_scenario(small_scenario());
  const campaign::CampaignResult result = campaign::run_campaign(s, opts);

  for (const auto& r : result.runs) {
    // Re-run the resolved spec directly through the harness (no campaign,
    // no cache, no recorder): bit-identical simulated results.
    apps::AppSpec app;
    app.name = r.resolved.app;
    app.options = r.resolved.app_options;
    ir::Program prog = apps::build_app(app, r.resolved.config.nprocs);
    harness::RunOutcome direct;
    if (r.resolved.config.mode == harness::Mode::kAnalytical) {
      core::CompileResult compiled = core::compile(prog);
      direct =
          harness::run_program(compiled.simplified.program, r.resolved.config);
    } else {
      direct = harness::run_program(prog, r.resolved.config);
    }
    EXPECT_EQ(harness::run_digest_hex(direct),
              harness::run_digest_hex(r.outcome))
        << r.id;
  }
}

TEST(Campaign, MisconfiguredPointBecomesStructuredOutcome) {
  // nas_sp on a non-square process count: the campaign must keep going and
  // report internal_error for that point, not throw.
  const json::Value doc = json::Value::parse(R"({
    "name": "bad-point",
    "runs": [
      {"app": "nas_sp", "procs": 5, "mode": "de"},
      {"app": "sample", "procs": 2, "mode": "de",
       "options": {"iters": 2, "work": 1000}}
    ]
  })");
  ScratchDir dir("badpoint");
  campaign::CampaignOptions opts;
  opts.cache_dir = dir.sub("cache");
  const campaign::CampaignResult result =
      campaign::run_campaign(campaign::parse_scenario(doc), opts);
  ASSERT_EQ(result.runs.size(), 2u);
  EXPECT_EQ(result.runs[0].outcome.status,
            harness::RunStatus::kInternalError);
  EXPECT_TRUE(result.runs[1].outcome.ok());
  // The failed point's diagnostic lands in the report.
  const json::Value report = campaign::report_json(result);
  EXPECT_EQ(report.at("status_counts").at("internal_error").as_int(), 1);
}

TEST(Campaign, WriteReportsEmitsAllThreeFiles) {
  ScratchDir dir("reports");
  campaign::CampaignOptions opts;
  opts.cache_dir = dir.sub("cache");
  opts.out_dir = dir.sub("out");
  const campaign::Scenario s = campaign::parse_scenario(small_scenario());
  const campaign::CampaignResult result = campaign::run_campaign(s, opts);
  campaign::write_reports(result, opts);
  EXPECT_TRUE(fs::exists(fs::path(opts.out_dir) / "report.json"));
  EXPECT_TRUE(fs::exists(fs::path(opts.out_dir) / "report.csv"));
  EXPECT_TRUE(fs::exists(fs::path(opts.out_dir) / "campaign.json"));
  // report.json parses and carries one comparison group per process count.
  std::ifstream in(fs::path(opts.out_dir) / "report.json");
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value report = json::Value::parse(buf.str());
  EXPECT_EQ(report.at("comparisons").as_array().size(), 2u);
  EXPECT_EQ(report.at("runs").as_array().size(), 6u);
}

}  // namespace
}  // namespace stgsim
