// Tests for the optimistic scheduler's state-saving layer (DESIGN.md §15):
// periodic per-rank checkpoints, coast-forward restore, GVT-gated
// consumption-log pruning, and the adaptive tuning knobs. The contract
// under test throughout: none of these mechanisms may change committed
// results — digests stay bit-identical to the sequential conservative
// scheduler at every checkpoint interval, including runs whose fault
// plans force real rollbacks through the restore path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/nas_sp.hpp"
#include "apps/registry.hpp"
#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "fault/fault.hpp"
#include "harness/config_json.hpp"
#include "harness/digest.hpp"
#include "harness/runner.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "support/blob.hpp"

namespace stgsim {
namespace {

harness::RunConfig base_config(int nprocs) {
  harness::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.mode = harness::Mode::kDirectExec;
  return cfg;
}

std::uint64_t digest_of(const ir::Program& prog, harness::RunConfig cfg) {
  harness::RunOutcome out = harness::run_program(prog, cfg);
  EXPECT_TRUE(out.ok()) << out.diagnostic;
  return harness::run_digest(out);
}

struct AppCase {
  const char* name;
  ir::Program prog;
  int nprocs;
};

std::vector<AppCase> small_apps() {
  std::vector<AppCase> cases;
  {
    apps::TomcatvConfig c;
    c.n = 128;
    c.iterations = 2;
    cases.push_back({"tomcatv", apps::make_tomcatv(c), 8});
  }
  {
    apps::Sweep3DConfig c;
    c.it = 2;
    c.jt = 2;
    c.kt = 12;
    c.kb = 4;
    c.mm = 2;
    c.mmi = 1;
    c.npe_i = 2;
    c.npe_j = 4;
    cases.push_back({"sweep3d", apps::make_sweep3d(c), 8});
  }
  { cases.push_back({"nas_sp", apps::make_nas_sp(apps::sp_class('A', 2, 2)), 4}); }
  {
    apps::SampleConfig c;
    c.pattern = apps::SamplePattern::kAnySource;
    c.iterations = 2;
    c.msg_doubles = 64;
    c.work_iters = 2000;
    cases.push_back({"sample", apps::make_sample(c), 8});
  }
  return cases;
}

/// Fixed intervals exercised everywhere: every-consume, small, the
/// default, and 0 = checkpoints off (replay-from-zero, unpruned log).
const std::uint64_t kIntervals[] = {1, 4, 64, 0};

// ---------------------------------------------------------------------------
// Digest identity across intervals, drivers and worker counts
// ---------------------------------------------------------------------------

TEST(Checkpoint, DigestsBitIdenticalAcrossIntervalsAndWorkers) {
  for (const AppCase& app : small_apps()) {
    const std::uint64_t want = digest_of(app.prog, base_config(app.nprocs));
    for (const std::uint64_t interval : kIntervals) {
      for (int workers : {0, 2, 4, 8}) {
        harness::RunConfig cfg = base_config(app.nprocs);
        cfg.schedule = harness::Schedule::kOptimistic;
        cfg.threads = workers;
        cfg.checkpoint_interval = interval;
        cfg.checkpoint_adaptive = false;  // pin the interval exactly
        EXPECT_EQ(digest_of(app.prog, cfg), want)
            << app.name << " interval=" << interval << " workers=" << workers;
      }
    }
  }
}

TEST(Checkpoint, AdaptiveTuningAndSpeculationWindowPreserveDigests) {
  for (const AppCase& app : small_apps()) {
    const std::uint64_t want = digest_of(app.prog, base_config(app.nprocs));
    for (int workers : {0, 4}) {
      harness::RunConfig cfg = base_config(app.nprocs);
      cfg.schedule = harness::Schedule::kOptimistic;
      cfg.threads = workers;
      cfg.checkpoint_interval = 4;
      cfg.checkpoint_adaptive = true;
      cfg.gvt_interval = 16;
      cfg.speculation_window_sec = 1e-4;  // aggressive throttle
      EXPECT_EQ(digest_of(app.prog, cfg), want)
          << app.name << " adaptive+window workers=" << workers;
    }
  }
}

// ---------------------------------------------------------------------------
// Rollback through the restore path (deterministic, via the MC engine)
// ---------------------------------------------------------------------------

/// Same straggler machinery as test_optimistic.cpp: deliver rank 1's
/// fault-delayed message first so the wildcard root commits it
/// prematurely, then let earlier traffic land and force the rollback.
class StragglerFirstOracle : public simk::ScheduleOracle {
 public:
  std::size_t choose(const std::vector<simk::ChoiceOption>& options) override {
    using K = simk::ChoiceOption::Kind;
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i].kind == K::kDeliver && options[i].src == 1 &&
          options[i].dst == 0) {
        return i;
      }
    }
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i].kind == K::kResume && options[i].rank <= 1) return i;
    }
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i].kind == K::kDeliver) return i;
    }
    std::size_t best = 0;
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i].rank >= options[best].rank) best = i;
    }
    return best;
  }
};

ir::Program anysource_program(int nprocs, int iters) {
  apps::AppSpec spec;
  spec.name = "sample";
  spec.options = {{"pattern", "anysource"},
                  {"iters", std::to_string(iters)},
                  {"work", "2000"},
                  {"msg-doubles", "64"}};
  return apps::build_app(spec, nprocs);
}

const char* kStragglerPlan = "link:src=1,dst=0,latency=8";

TEST(Checkpoint, StragglerRollbackRestoresCorrectlyAtEveryInterval) {
  // Several wildcard iterations so the violation lands well past the
  // first checkpoint and coast-forward actually replays from a restore
  // point instead of degenerating to replay-from-zero.
  const ir::Program prog = anysource_program(3, 4);

  harness::RunConfig ref = base_config(3);
  ref.faults = fault::parse_fault_plan(kStragglerPlan);
  const std::uint64_t want = digest_of(prog, ref);

  std::uint64_t replayed_with_checkpoints = 0;
  std::uint64_t replayed_without = 0;
  for (const std::uint64_t interval : kIntervals) {
    StragglerFirstOracle oracle;
    obs::Recorder rec(obs::Options{}, 3);
    harness::RunConfig opt = ref;
    opt.schedule = harness::Schedule::kOptimistic;
    opt.checkpoint_interval = interval;
    opt.checkpoint_adaptive = false;
    opt.oracle = &oracle;
    opt.obs = &rec;
    harness::RunOutcome out = harness::run_program(prog, opt);
    ASSERT_TRUE(out.ok()) << out.diagnostic;

    EXPECT_EQ(harness::run_digest(out), want)
        << "interval=" << interval
        << ": restore-path rollback must recover the conservative order";
    EXPECT_GE(out.parallel.rollbacks, 1u) << "interval=" << interval;
    if (interval == 1) {
      EXPECT_GE(out.parallel.checkpoints_taken, 1u);
      replayed_with_checkpoints = out.parallel.replayed_events;
    }
    if (interval == 0) {
      EXPECT_EQ(out.parallel.checkpoints_taken, 0u);
      replayed_without = out.parallel.replayed_events;
    }

    // The new counters surface through the obs metrics contract.
    auto metric = [&out](const char* name) {
      for (const auto& [n, v] : out.metrics.scalars) {
        if (n == std::string(name)) return v;
      }
      return -1.0;
    };
    EXPECT_EQ(metric("parallel.checkpoints_taken"),
              static_cast<double>(out.parallel.checkpoints_taken));
    EXPECT_EQ(metric("parallel.replayed_events"),
              static_cast<double>(out.parallel.replayed_events));
    EXPECT_EQ(metric("parallel.log_bytes_peak"),
              static_cast<double>(out.parallel.log_bytes_peak));
  }
  // Checkpointing every consume must not replay more than replay-from-zero
  // does; that saving is the whole point of coast-forward restore.
  EXPECT_LE(replayed_with_checkpoints, replayed_without);
}

TEST(Checkpoint, RollbackDepthHistogramAccountsForEveryRollback) {
  const ir::Program prog = anysource_program(3, 4);
  StragglerFirstOracle oracle;
  obs::Recorder rec(obs::Options{}, 3);
  harness::RunConfig opt = base_config(3);
  opt.faults = fault::parse_fault_plan(kStragglerPlan);
  opt.schedule = harness::Schedule::kOptimistic;
  opt.checkpoint_interval = 4;
  opt.checkpoint_adaptive = false;
  opt.oracle = &oracle;
  opt.obs = &rec;
  harness::RunOutcome out = harness::run_program(prog, opt);
  ASSERT_TRUE(out.ok()) << out.diagnostic;
  ASSERT_GE(out.parallel.rollbacks, 1u);

  std::uint64_t histogram_total = 0;
  for (const std::uint64_t c : out.metrics.rollback_depth_hist) {
    histogram_total += c;
  }
  EXPECT_EQ(histogram_total, out.parallel.rollbacks)
      << "every rollback lands in exactly one depth bucket";
}

// ---------------------------------------------------------------------------
// Log-memory bound
// ---------------------------------------------------------------------------

TEST(Checkpoint, CheckpointsBoundConsumptionLogMemory) {
  apps::SampleConfig c;
  c.iterations = 30;
  c.msg_doubles = 256;
  c.work_iters = 1000;
  const ir::Program prog = apps::make_sample(c);

  auto peak_at = [&prog](std::uint64_t interval) {
    harness::RunConfig cfg = base_config(8);
    cfg.schedule = harness::Schedule::kOptimistic;
    cfg.checkpoint_interval = interval;
    cfg.checkpoint_adaptive = false;
    cfg.gvt_interval = 16;
    harness::RunOutcome out = harness::run_program(prog, cfg);
    EXPECT_TRUE(out.ok()) << out.diagnostic;
    EXPECT_EQ(out.parallel.checkpoints_taken > 0, interval != 0);
    return out.parallel.log_bytes_peak;
  };

  const std::uint64_t peak_tight = peak_at(1);
  const std::uint64_t peak_unpruned = peak_at(0);
  EXPECT_GT(peak_tight, 0u);
  EXPECT_LT(peak_tight, peak_unpruned)
      << "with checkpoints every consume, GVT pruning must keep the "
         "retained log strictly below the full-history footprint";
}

// ---------------------------------------------------------------------------
// Engine-level fossil-pruning invariants
// ---------------------------------------------------------------------------

TEST(Checkpoint, FossilCollectionPrunesBehindCommittedCheckpoints) {
  constexpr int kProcs = 4;
  constexpr std::int64_t kIters = 64;
  simk::EngineConfig cfg;
  cfg.num_processes = kProcs;
  cfg.optimistic = true;
  cfg.checkpoint_interval = 4;
  cfg.checkpoint_adaptive = false;
  cfg.gvt_interval = 16;
  cfg.gvt_adaptive = false;
  simk::Engine e(cfg);
  e.set_body([](simk::Process& p) {
    const int r = p.rank();
    const int next = (r + 1) % kProcs;
    const int prev = (r + kProcs - 1) % kProcs;
    std::int64_t start = 0;
    if (const std::vector<std::uint8_t>* blob = p.pending_restore()) {
      BlobReader br(*blob);
      start = br.i64();
      p.clear_pending_restore();
    }
    for (std::int64_t i = start; i < kIters; ++i) {
      p.advance(vtime_from_us(1));
      simk::Message m;
      m.src = r;
      m.dst = next;
      m.tag = 5;
      m.sent_at = p.now();
      m.arrival = p.now() + vtime_from_us(2);
      p.send(std::move(m));
      simk::MatchSpec spec;
      spec.src = prev;
      spec.tag = 5;
      simk::Message got = p.blocking_match(spec);
      p.lift_clock(got.arrival);
      if (p.checkpoint_due()) {
        std::vector<std::uint8_t> blob;
        BlobWriter w(blob);
        w.i64(i + 1);  // resume after this iteration
        p.take_checkpoint(std::move(blob));
      }
    }
  });
  e.run();

  for (int r = 0; r < kProcs; ++r) {
    const simk::Engine::OptDebug d = e.opt_debug(r);
    // Absolute accounting: base + retained = total committed consumes.
    EXPECT_EQ(d.consumed_base + d.consumed_size,
              static_cast<std::uint64_t>(kIters))
        << "rank " << r;
    // GVT passed checkpoints mid-run, so the log must actually have been
    // pruned — peak memory O(interval), not O(history).
    EXPECT_GT(d.consumed_base, 0u) << "rank " << r;
    EXPECT_GE(d.fossil_cursor, d.consumed_base) << "rank " << r;
    // Pruning may only advance the base to a committed checkpoint's
    // cursor, keeping that checkpoint as the oldest restore point: no
    // surviving checkpoint sits below the base, and the oldest one marks
    // exactly where the retained log begins.
    ASSERT_FALSE(d.checkpoint_cursors.empty()) << "rank " << r;
    EXPECT_EQ(d.checkpoint_cursors.front(), d.consumed_base) << "rank " << r;
    for (const std::uint64_t cur : d.checkpoint_cursors) {
      EXPECT_GE(cur, d.consumed_base) << "rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Config surface
// ---------------------------------------------------------------------------

TEST(Checkpoint, TuningKnobsRoundTripThroughConfigJson) {
  harness::RunConfig cfg;
  cfg.gvt_interval = 32;
  cfg.checkpoint_interval = 7;
  cfg.checkpoint_adaptive = false;
  cfg.speculation_window_sec = 0.25;
  const json::Value j = harness::run_config_to_json(cfg);
  const harness::RunConfig back = harness::run_config_from_json(j);
  EXPECT_EQ(back.gvt_interval, 32u);
  EXPECT_EQ(back.checkpoint_interval, 7u);
  EXPECT_FALSE(back.checkpoint_adaptive);
  EXPECT_DOUBLE_EQ(back.speculation_window_sec, 0.25);

  // "checkpoint_interval": 0 is the canonical spelling of "off".
  harness::RunConfig off;
  off.checkpoint_interval = 0;
  EXPECT_EQ(harness::run_config_from_json(harness::run_config_to_json(off))
                .checkpoint_interval,
            0u);
}

}  // namespace
}  // namespace stgsim
