// Unit tests for simplified-program generation (paper §3.1) and the
// timer-version generator (§3.3).
#include <gtest/gtest.h>

#include "core/codegen.hpp"
#include "core/compiler.hpp"
#include "ir/builder.hpp"

namespace stgsim::core {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::KernelSpec kernel(const std::string& task, Expr iters,
                      std::vector<std::string> writes = {"A"}) {
  ir::KernelSpec k;
  k.task = task;
  k.iters = std::move(iters);
  k.writes = std::move(writes);
  return k;
}

std::size_t count_kind(const ir::Program& p, ir::StmtKind kind) {
  std::size_t n = 0;
  ir::for_each_stmt(p, [&](const ir::Stmt& s) { n += s.kind == kind; });
  return n;
}

sym::MapEnv env_with(std::map<std::string, sym::Value> vals) {
  return sym::MapEnv(std::move(vals));
}

TEST(Codegen, AdjacentEliminatedKernelsMergeIntoOneDelay) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  b.decl_array("A", {I(64)});
  b.compute(kernel("k1", I(100)));
  b.compute(kernel("k2", I(200)));
  b.compute(kernel("k3", I(300)));
  b.barrier();
  ir::Program p = b.take();

  auto result = generate_simplified(p, compute_slice(p));
  ASSERT_EQ(result.condensed.size(), 1u);
  EXPECT_EQ(result.condensed[0].tasks.size(), 3u);
  // delay = 100 w_k1 + 200 w_k2 + 300 w_k3.
  auto env = env_with({{"w_k1", 1.0}, {"w_k2", 10.0}, {"w_k3", 100.0}});
  EXPECT_DOUBLE_EQ(result.condensed[0].seconds.eval_real(env),
                   100.0 + 2000.0 + 30000.0);
}

TEST(Codegen, RetainedStatementSplitsDelays) {
  ir::ProgramBuilder b("t");
  Expr myid = b.get_rank("myid");
  Expr P = b.get_size("P");
  b.decl_array("A", {I(64)});
  b.compute(kernel("k1", I(100)));
  b.if_then(sym::lt(myid, P - 1),
            [&] { b.send("A", myid + 1, I(8), I(0), 0); });
  b.compute(kernel("k2", I(200)));
  ir::Program p = b.take();

  auto result = generate_simplified(p, compute_slice(p));
  EXPECT_EQ(result.condensed.size(), 2u);  // before and after the send
}

TEST(Codegen, AffineLoopCollapsesToClosedForm) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  Expr n = b.decl_int("n", I(10));
  b.decl_array("A", {I(64)});
  b.for_loop("i", I(1), n, [&](Expr i) { b.compute(kernel("tri", i)); });
  b.barrier();
  ir::Program p = b.take();

  auto result = generate_simplified(p, compute_slice(p));
  ASSERT_EQ(result.condensed.size(), 1u);
  // No executable Sum node: closed form of sum_{i=1..n} i * w.
  std::function<bool(const sym::Node&)> has_sum = [&](const sym::Node& node) {
    if (node.op == sym::Op::kSum) return true;
    for (const auto& c : node.children) {
      if (has_sum(*c)) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_sum(result.condensed[0].seconds.node()));
  auto env = env_with({{"n", sym::Value(std::int64_t{10})}, {"w_tri", 2.0}});
  EXPECT_DOUBLE_EQ(result.condensed[0].seconds.eval_real(env), 55.0 * 2.0);

  // No loop survives in the simplified program.
  EXPECT_EQ(count_kind(result.program, ir::StmtKind::kFor), 0u);
}

TEST(Codegen, NonAffineLoopKeepsExecutableSum) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  Expr n = b.decl_int("n", I(9));
  b.decl_array("A", {I(64)});
  b.for_loop("i", I(1), n, [&](Expr i) {
    b.compute(kernel("sq", i * i));  // quadratic: no closed form here
  });
  b.barrier();
  ir::Program p = b.take();

  auto result = generate_simplified(p, compute_slice(p));
  ASSERT_EQ(result.condensed.size(), 1u);
  auto env = env_with({{"n", sym::Value(std::int64_t{9})}, {"w_sq", 1.0}});
  // sum_{i=1..9} i^2 = 285.
  EXPECT_DOUBLE_EQ(result.condensed[0].seconds.eval_real(env), 285.0);
}

TEST(Codegen, ClosedFormDisabledFallsBackToSum) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  Expr n = b.decl_int("n", I(10));
  b.decl_array("A", {I(64)});
  b.for_loop("i", I(1), n, [&](Expr i) { b.compute(kernel("tri", i)); });
  b.barrier();
  ir::Program p = b.take();

  CodegenOptions opts;
  opts.use_closed_form_sums = false;
  auto result = generate_simplified(p, compute_slice(p), opts);
  auto env = env_with({{"n", sym::Value(std::int64_t{10})}, {"w_tri", 2.0}});
  EXPECT_DOUBLE_EQ(result.condensed[0].seconds.eval_real(env), 110.0);
}

TEST(Codegen, EliminatedBranchIsProbabilityWeighted) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  Expr flag = b.decl_int("flag", I(0));
  b.decl_array("A", {I(64)});
  b.if_then_else(sym::eq(flag, I(1)),
                 [&] { b.compute(kernel("hot", I(1000))); },
                 [&] { b.compute(kernel("cold", I(10))); });
  b.barrier();
  ir::Program p = b.take();

  const ir::Stmt* branch = nullptr;
  ir::for_each_stmt(p, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kIf) branch = &s;
  });
  ASSERT_NE(branch, nullptr);

  CodegenOptions opts;
  opts.branch_probs[branch->id] = 0.25;
  auto result = generate_simplified(p, compute_slice(p), opts);
  ASSERT_EQ(result.condensed.size(), 1u);
  auto env = env_with({{"w_hot", 1.0}, {"w_cold", 1.0}});
  EXPECT_DOUBLE_EQ(result.condensed[0].seconds.eval_real(env),
                   0.25 * 1000.0 + 0.75 * 10.0);
}

TEST(Codegen, DefaultBranchProbabilityIsHalf) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  Expr flag = b.decl_int("flag", I(0));
  b.decl_array("A", {I(64)});
  b.if_then(sym::eq(flag, I(1)),
            [&] { b.compute(kernel("hot", I(1000))); });
  b.barrier();
  ir::Program p = b.take();
  auto result = generate_simplified(p, compute_slice(p));
  auto env = env_with({{"w_hot", 1.0}});
  EXPECT_DOUBLE_EQ(result.condensed[0].seconds.eval_real(env), 500.0);
}

TEST(Codegen, DummyBufferSizedToMaximumMessage) {
  ir::ProgramBuilder b("t");
  Expr myid = b.get_rank("myid");
  Expr P = b.get_size("P");
  b.decl_array("A", {I(4096)});
  b.decl_array("B", {I(4096)}, 4);  // 4-byte elements
  b.if_then(sym::lt(myid, P - 1), [&] {
    b.send("A", myid + 1, I(100), I(0), 0);   // 800 bytes
    b.send("B", myid + 1, I(500), I(0), 1);   // 2000 bytes
    b.send("A", myid + 1, I(50), I(7), 2);    // 400 bytes
  });
  ir::Program p = b.take();
  auto result = generate_simplified(p, compute_slice(p));
  EXPECT_EQ(result.dummy_buffer_comms, 3u);

  const ir::Stmt* dummy = nullptr;
  ir::for_each_stmt(result.program, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kDeclArray && s.name == "__dummy_buf") {
      dummy = &s;
    }
  });
  ASSERT_NE(dummy, nullptr);
  EXPECT_EQ(dummy->elem_bytes, 1u);
  sym::MapEnv env;
  EXPECT_EQ(dummy->extents[0].eval_int(env), 2000);

  // Every rewritten comm uses byte counts and offset 0 on the dummy.
  ir::for_each_stmt(result.program, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kSend) {
      EXPECT_EQ(s.name, "__dummy_buf");
      auto off = s.e3.constant_value();
      ASSERT_TRUE(off.has_value());
      EXPECT_EQ(off->as_int(), 0);
    }
  });
}

TEST(Codegen, LiveArraysKeepTheirCommunication) {
  // An array read by a retained kernel stays; comm on it is not dummied.
  ir::ProgramBuilder b("t");
  Expr myid = b.get_rank("myid");
  Expr P = b.get_size("P");
  b.decl_real("resid", Expr::real(1.0));
  b.decl_array("U", {I(128)});
  b.if_then(sym::gt(myid, I(0)),
            [&] { b.recv("U", myid - 1, I(16), I(0), 0); });
  b.if_then(sym::lt(myid, P - 1),
            [&] { b.send("U", myid + 1, I(16), I(0), 0); });
  ir::KernelSpec res = kernel("res", I(128), {"resid"});
  res.reads = {"U"};
  b.compute(std::move(res));
  b.allreduce_sum("resid");
  b.if_then(sym::gt(Expr::var("resid"), Expr::real(0.5)), [&] { b.barrier(); });
  ir::Program p = b.take();
  auto slice = compute_slice(p);
  ASSERT_TRUE(slice.array_is_live("U"));
  auto result = generate_simplified(p, slice);
  EXPECT_EQ(result.dummy_buffer_comms, 0u);
  ir::for_each_stmt(result.program, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kSend || s.kind == ir::StmtKind::kRecv) {
      EXPECT_EQ(s.name, "U");
    }
  });
}

TEST(Codegen, ReadParamProloguePrecedesEverything) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  b.decl_array("A", {I(64)});
  b.compute(kernel("k1", I(10)));
  b.compute(kernel("k2", I(20)));
  b.barrier();
  ir::Program p = b.take();
  auto result = generate_simplified(p, compute_slice(p));
  EXPECT_EQ(result.params,
            (std::set<std::string>{"w_k1", "w_k2"}));
  const auto& main = result.program.main();
  ASSERT_GE(main.size(), 2u);
  EXPECT_EQ(main[0]->kind, ir::StmtKind::kReadParam);
  EXPECT_EQ(main[1]->kind, ir::StmtKind::kReadParam);
}

TEST(Codegen, SimplifiedProgramHasNoKernels) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  b.decl_array("A", {I(64)});
  b.for_loop("i", I(1), I(5), [&](Expr) { b.compute(kernel("k", I(10))); });
  b.barrier();
  ir::Program p = b.take();
  auto result = generate_simplified(p, compute_slice(p));
  EXPECT_EQ(count_kind(result.program, ir::StmtKind::kCompute), 0u);
  result.program.validate();
}

TEST(Codegen, TimerProgramWrapsKernelsEverywhere) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  b.decl_array("A", {I(64)});
  b.procedure("helper", [&] { b.compute(kernel("pk", I(5))); });
  b.for_loop("i", I(1), I(2), [&](Expr) {
    b.compute(kernel("lk", I(7)));
    b.call("helper");
  });
  ir::Program p = b.take();
  ir::Program timer = generate_timer_program(p);
  EXPECT_EQ(count_kind(timer, ir::StmtKind::kTimerStart), 2u);
  EXPECT_EQ(count_kind(timer, ir::StmtKind::kTimerStop), 2u);
  EXPECT_EQ(count_kind(timer, ir::StmtKind::kCompute), 2u);
  timer.validate();

  // Start-kernel-stop adjacency holds in every body.
  ir::for_each_stmt(timer, [&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::kTimerStop) return;
    EXPECT_FALSE(s.name.empty());
  });
}

TEST(Codegen, CompileDriverProducesConsistentArtifacts) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  b.decl_array("A", {I(64)});
  b.compute(kernel("k", I(10)));
  b.barrier();
  ir::Program p = b.take();
  CompileResult r = compile(p);
  EXPECT_EQ(r.simplified.params.size(), r.simplified.condensed.empty() ? 0u : 1u);
  EXPECT_FALSE(r.report(p).empty());
  r.simplified.program.validate();
  r.timer_program.validate();
}

}  // namespace
}  // namespace stgsim::core
