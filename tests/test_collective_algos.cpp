// Tests for the algorithmic collectives (smpi/collectives.*): value
// correctness of every algorithm under uneven chunking, hand-computed
// cost cross-checks at small P on the flat preset, the auto size rule,
// and digest bit-identity across topology x algorithm x scheduler.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "apps/nas_sp.hpp"
#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "harness/digest.hpp"
#include "harness/machines.hpp"
#include "harness/runner.hpp"
#include "ir/interp.hpp"
#include "smpi/collectives.hpp"
#include "smpi/smpi.hpp"

namespace stgsim::smpi {
namespace {

struct Fixture {
  explicit Fixture(int nprocs, World::Options opts = {})
      : world(opts, nprocs) {
    ec.num_processes = nprocs;
  }

  simk::RunResult run(std::function<void(Comm&)> body) {
    simk::Engine engine(ec);
    engine.set_body([&](simk::Process& p) {
      Comm comm(world, p);
      body(comm);
    });
    return engine.run();
  }

  World world;
  simk::EngineConfig ec;
};

World::Options with_algo(CollOp op, CollAlgo algo) {
  World::Options opts;
  coll_algo_field(opts.coll, op) = algo;
  return opts;
}

// ---------------------------------------------------------------------------
// Algorithm selection
// ---------------------------------------------------------------------------

TEST(CollAlgoConfig, AutoFollowsTheSizeRule) {
  CollectiveConfig cfg;  // ring_threshold = 64 KiB
  EXPECT_EQ(resolve_coll_algo(CollOp::kBcast, CollAlgo::kAuto, 8,
                              cfg.ring_threshold),
            CollAlgo::kBinomial);
  EXPECT_EQ(resolve_coll_algo(CollOp::kBcast, CollAlgo::kAuto, 64 * 1024,
                              cfg.ring_threshold),
            CollAlgo::kRing);
  EXPECT_EQ(resolve_coll_algo(CollOp::kBarrier, CollAlgo::kAuto, 0,
                              cfg.ring_threshold),
            CollAlgo::kDissemination);
  EXPECT_EQ(resolve_coll_algo(CollOp::kAlltoall, CollAlgo::kAuto, 1024,
                              cfg.ring_threshold),
            CollAlgo::kPairwise);
  EXPECT_EQ(resolve_coll_algo(CollOp::kAllreduce, CollAlgo::kAuto, 512, 256),
            CollAlgo::kRing);
}

TEST(CollAlgoConfig, ParseRejectsUnsupportedCombos) {
  EXPECT_EQ(parse_coll_algo(CollOp::kBcast, "ring"), CollAlgo::kRing);
  EXPECT_THROW((void)parse_coll_algo(CollOp::kBarrier, "ring"),
               std::runtime_error);
  EXPECT_THROW((void)parse_coll_algo(CollOp::kAlltoall, "binomial"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Value correctness under forced algorithms (uneven chunking on purpose:
// P=5 ranks, 7 doubles does not divide evenly into ring chunks)
// ---------------------------------------------------------------------------

TEST(CollAlgoValues, RingBcastDeliversRootData) {
  Fixture f(5, with_algo(CollOp::kBcast, CollAlgo::kRing));
  f.run([](Comm& c) {
    double buf[7];
    for (int i = 0; i < 7; ++i) buf[i] = c.rank() == 2 ? 100.0 + i : -1.0;
    c.bcast(buf, sizeof buf, 2);
    for (int i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(buf[i], 100.0 + i);
  });
}

TEST(CollAlgoValues, RingReduceAccumulatesAtNonzeroRoot) {
  Fixture f(5, with_algo(CollOp::kReduce, CollAlgo::kRing));
  f.run([](Comm& c) {
    double v[7];
    for (int i = 0; i < 7; ++i) v[i] = c.rank() + i * 0.5;
    c.reduce_sum(v, 7, 3);
    if (c.rank() == 3) {
      for (int i = 0; i < 7; ++i) {
        EXPECT_DOUBLE_EQ(v[i], 10.0 + 5 * i * 0.5) << "element " << i;
      }
    }
  });
}

TEST(CollAlgoValues, RingAllreduceSumAgreesEverywhere) {
  Fixture f(5, with_algo(CollOp::kAllreduce, CollAlgo::kRing));
  f.run([](Comm& c) {
    double v[7];
    for (int i = 0; i < 7; ++i) v[i] = c.rank() + i * 0.5;
    c.allreduce_sum(v, 7);
    for (int i = 0; i < 7; ++i) {
      EXPECT_DOUBLE_EQ(v[i], 10.0 + 5 * i * 0.5) << "element " << i;
    }
  });
}

TEST(CollAlgoValues, RingAllreduceMaxAgreesEverywhere) {
  Fixture f(5, with_algo(CollOp::kAllreduce, CollAlgo::kRing));
  f.run([](Comm& c) {
    double v[3] = {static_cast<double>(c.rank()),
                   static_cast<double>(-c.rank()), 7.0};
    c.allreduce_max(v, 3);
    EXPECT_DOUBLE_EQ(v[0], 4.0);
    EXPECT_DOUBLE_EQ(v[1], 0.0);
    EXPECT_DOUBLE_EQ(v[2], 7.0);
  });
}

TEST(CollAlgoValues, AlltoallExchangesRankMajorBlocks) {
  for (CollAlgo algo : {CollAlgo::kPairwise, CollAlgo::kLinear}) {
    Fixture f(5, with_algo(CollOp::kAlltoall, algo));
    f.run([](Comm& c) {
      const int P = c.size();
      std::vector<double> send(static_cast<std::size_t>(P));
      std::vector<double> recv(static_cast<std::size_t>(P), -1.0);
      for (int d = 0; d < P; ++d) send[d] = 1000.0 * c.rank() + d;
      c.alltoall(send.data(), sizeof(double), recv.data());
      // recv[s] is the block rank s addressed to us.
      for (int s = 0; s < P; ++s) {
        EXPECT_DOUBLE_EQ(recv[s], 1000.0 * s + c.rank());
      }
    });
  }
}

TEST(CollAlgoValues, LinearAndBinomialAgreeWithRing) {
  for (CollAlgo algo : {CollAlgo::kLinear, CollAlgo::kBinomial}) {
    Fixture f(6, with_algo(CollOp::kAllreduce, algo));
    f.run([](Comm& c) {
      double v = c.rank() + 1.0;
      c.allreduce_sum(&v, 1);
      EXPECT_DOUBLE_EQ(v, 21.0);
    });
  }
}

// ---------------------------------------------------------------------------
// Hand-computed costs at small P (flat preset: every hop costs
// latency L, serialization S, plus send/recv overheads so/ro)
// ---------------------------------------------------------------------------

struct NetConstants {
  VTime so, ro, L;
  VTime step(std::size_t wire_bytes) const {
    return so + L +
           vtime_from_sec(static_cast<double>(std::max(wire_bytes,
                                                       std::size_t{8})) /
                          net::ibm_sp().bytes_per_sec) +
           ro;
  }
};

NetConstants constants() {
  const net::NetworkParams p = net::ibm_sp();
  return {p.send_overhead, p.recv_overhead, p.latency};
}

TEST(CollAlgoCosts, BinomialBcastP4IsTwoChainedSteps) {
  // Round 1: root -> rank 2. Round 2: root -> 1 and 2 -> 3 in parallel.
  // The critical path is two full (so + L + S + ro) hops through rank 2.
  Fixture f(4, with_algo(CollOp::kBcast, CollAlgo::kBinomial));
  const simk::RunResult rr = f.run([](Comm& c) {
    double x = 0.0;
    c.bcast(&x, sizeof x, 0);
  });
  EXPECT_EQ(rr.completion, 2 * constants().step(8));
}

TEST(CollAlgoCosts, DisseminationBarrierP4IsLogRounds) {
  // Spans 1 and 2: every rank sends and receives once per round, all in
  // lockstep, so the barrier costs exactly 2 token steps.
  Fixture f(4, with_algo(CollOp::kBarrier, CollAlgo::kDissemination));
  const simk::RunResult rr = f.run([](Comm& c) { c.barrier(); });
  EXPECT_EQ(rr.completion, 2 * constants().step(8));
}

TEST(CollAlgoCosts, RingAllreduceP4IsTwoPMinusOneSteps) {
  // Reduce-scatter (P-1 steps) + allgather (P-1 steps), each moving one
  // 8-byte chunk to the neighbor in lockstep: 6 chained steps at P=4.
  Fixture f(4, with_algo(CollOp::kAllreduce, CollAlgo::kRing));
  const simk::RunResult rr = f.run([](Comm& c) {
    double v[4] = {1.0, 2.0, 3.0, 4.0};
    c.allreduce_sum(v, 4);
  });
  EXPECT_EQ(rr.completion, 6 * constants().step(8));
}

TEST(CollAlgoCosts, LinearBcastP4IsRootSequential) {
  // Root issues P-1 eager sends back to back (so each), and the last
  // receiver completes after the last send's wire time.
  Fixture f(4, with_algo(CollOp::kBcast, CollAlgo::kLinear));
  const simk::RunResult rr = f.run([](Comm& c) {
    double x = 0.0;
    c.bcast(&x, sizeof x, 0);
  });
  const NetConstants k = constants();
  EXPECT_EQ(rr.completion, 3 * k.so + (k.step(8) - k.so));
}

TEST(CollAlgoCosts, CrossoverMatchesTheSizeRule) {
  // Small payloads: binomial's log P critical path beats ring's 2(P-1)
  // chunk steps. Large payloads: ring moves ~2x the payload per rank
  // regardless of P, beating binomial's log P full-payload hops.
  auto bcast_time = [](CollAlgo algo, std::size_t bytes) {
    Fixture f(8, with_algo(CollOp::kBcast, algo));
    std::vector<std::uint8_t> buf(bytes);
    return f
        .run([&](Comm& c) { c.bcast(buf.data(), buf.size(), 0); })
        .completion;
  };
  EXPECT_LT(bcast_time(CollAlgo::kBinomial, 64),
            bcast_time(CollAlgo::kRing, 64));
  EXPECT_LT(bcast_time(CollAlgo::kRing, 1 << 20),
            bcast_time(CollAlgo::kBinomial, 1 << 20));

  auto allreduce_time = [](CollAlgo algo, int n) {
    Fixture f(8, with_algo(CollOp::kAllreduce, algo));
    std::vector<double> v(static_cast<std::size_t>(n), 1.0);
    return f.run([&](Comm& c) { c.allreduce_sum(v.data(), n); }).completion;
  };
  EXPECT_LT(allreduce_time(CollAlgo::kBinomial, 8),
            allreduce_time(CollAlgo::kRing, 8));
  EXPECT_LT(allreduce_time(CollAlgo::kRing, 1 << 17),
            allreduce_time(CollAlgo::kBinomial, 1 << 17));
}

// ---------------------------------------------------------------------------
// Digest bit-identity: topology x algorithm x scheduler
// ---------------------------------------------------------------------------

std::uint64_t digest_of(const ir::Program& prog, int nprocs, int threads,
                        const harness::MachineSpec& machine) {
  harness::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.mode = harness::Mode::kDirectExec;
  cfg.threads = threads;
  cfg.machine = machine;
  harness::RunOutcome out = harness::run_program(prog, cfg);
  EXPECT_TRUE(out.ok()) << out.diagnostic;
  return harness::run_digest(out);
}

TEST(CollAlgoDigests, IdenticalAcrossSchedulersOnEveryTopologyAndAlgo) {
  // All four apps (tiny configs), every topology preset, ring vs
  // binomial collectives: the threaded conservative scheduler must match
  // the sequential digest bit for bit in each cell. This is the matrix
  // the platform layer's pure-(src,dst) cost rule exists to protect.
  struct AppCase {
    const char* name;
    ir::Program prog;
    int procs;
  };
  std::vector<AppCase> cases;
  {
    apps::SampleConfig c;
    c.iterations = 2;
    c.msg_doubles = 32;
    c.work_iters = 500;
    cases.push_back({"sample", apps::make_sample(c), 6});
  }
  {
    apps::Sweep3DConfig c;
    c.it = 2;
    c.jt = 2;
    c.kt = 8;
    c.kb = 4;
    c.mm = 2;
    c.mmi = 1;
    c.npe_i = 2;
    c.npe_j = 2;
    cases.push_back({"sweep3d", apps::make_sweep3d(c), 4});
  }
  {
    apps::TomcatvConfig c;
    c.n = 40;
    c.iterations = 1;
    cases.push_back({"tomcatv", apps::make_tomcatv(c), 4});
  }
  cases.push_back({"nas_sp", apps::make_nas_sp(apps::sp_class('A', 2, 2)), 4});

  const char* machines[] = {
      "ibm_sp[algo.bcast=ring,algo.reduce=ring,algo.allreduce=ring]",
      "ibm_sp[algo.bcast=binomial,algo.reduce=binomial,"
      "algo.allreduce=binomial]",
      "ibm_sp[topo=torus,algo.allreduce=ring]",
      "ibm_sp[topo=torus,hop_us=3,algo.allreduce=binomial]",
      "ibm_sp[topo=fattree,radix=4,algo.allreduce=ring]",
      "ibm_sp[topo=fattree,radix=4,algo.bcast=binomial]",
      "ibm_sp[topo=dragonfly,df_routers=2,df_hosts=2,algo.allreduce=ring]",
      "ibm_sp[topo=dragonfly,df_routers=2,df_hosts=2,algo.bcast=binomial]",
  };
  for (const AppCase& ac : cases) {
    const ir::Program& prog = ac.prog;
    for (const char* mspec : machines) {
      const harness::MachineSpec machine = harness::parse_machine_spec(mspec);
      const std::uint64_t seq = digest_of(prog, ac.procs, 0, machine);
      for (int workers : {1, 2, 4}) {
        EXPECT_EQ(digest_of(prog, ac.procs, workers, machine), seq)
            << ac.name << " on " << mspec << " with " << workers
            << " workers";
      }
    }
  }
}

}  // namespace
}  // namespace stgsim::smpi
