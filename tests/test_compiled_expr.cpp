// Property tests for symexpr::CompiledExpr: for random expression DAGs,
// the compiled postfix tape must agree with the tree walker on every
// environment — same values (including int-vs-real kind), and the same
// EvalError behavior for domain errors and unbound variables.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>

#include "support/rng.hpp"
#include "symexpr/compiled.hpp"
#include "symexpr/expr.hpp"

namespace stgsim::sym {
namespace {

// Either a value or "threw EvalError(message)".
struct Outcome {
  std::optional<Value> value;
  std::string error;

  bool operator==(const Outcome& o) const {
    if (value.has_value() != o.value.has_value()) return false;
    if (!value.has_value()) return error == o.error;
    // Distinguish Value(2) from Value(2.0): coercion rules must match too.
    return value->is_int() == o.value->is_int() && *value == *o.value;
  }
};

// Both evaluators may also throw CheckError (e.g. a fractional real used
// as an integer operand); what matters is that they throw the *same*
// error, so the outcome records the message of whatever escaped.
Outcome tree_eval(const Expr& e, const Env& env) {
  try {
    return {e.eval(env), ""};
  } catch (const std::exception& err) {
    return {std::nullopt, err.what()};
  }
}

Outcome compiled_eval(const CompiledExpr& ce, const Env& env) {
  try {
    return {ce.eval(env), ""};
  } catch (const std::exception& err) {
    return {std::nullopt, err.what()};
  }
}

std::string outcome_str(const Outcome& o) {
  if (!o.value) return "error " + o.error;
  return std::string(o.value->is_int() ? "int " : "real ") +
         std::to_string(o.value->as_real());
}

// Random expression generator. Depth-bounded; mixes every operator,
// integer and real literals, and a small variable alphabet so Sum binders
// shadow free variables of the same name.
class ExprGen {
 public:
  explicit ExprGen(std::uint64_t seed) : rng_(seed) {}

  Expr gen(int depth) {
    if (depth <= 0 || rng_.next_in(0, 5) == 0) return leaf();
    switch (rng_.next_in(0, 13)) {
      case 0: return gen(depth - 1) + gen(depth - 1);
      case 1: return gen(depth - 1) - gen(depth - 1);
      case 2: return gen(depth - 1) * gen(depth - 1);
      case 3: return gen(depth - 1) / gen(depth - 1);
      case 4: return idiv(gen(depth - 1), gen(depth - 1));
      case 5: return imod(gen(depth - 1), gen(depth - 1));
      case 6: return min(gen(depth - 1), gen(depth - 1));
      case 7: return max(gen(depth - 1), gen(depth - 1));
      case 8: return -gen(depth - 1);
      case 9: return logical_not(compare(depth - 1));
      case 10:
        return select(compare(depth - 1), gen(depth - 1), gen(depth - 1));
      case 11: {
        // Small, possibly empty, iteration space keeps runtimes bounded.
        const std::string v = var_name();
        return sum(v, Expr::integer(rng_.next_in(-2, 2)),
                   Expr::integer(rng_.next_in(-2, 4)), gen(depth - 1));
      }
      case 12:
        return logical_and(compare(depth - 1), compare(depth - 1));
      default:
        return logical_or(compare(depth - 1), compare(depth - 1));
    }
  }

  Expr compare(int depth) {
    switch (rng_.next_in(0, 5)) {
      case 0: return eq(gen(depth), gen(depth));
      case 1: return ne(gen(depth), gen(depth));
      case 2: return lt(gen(depth), gen(depth));
      case 3: return le(gen(depth), gen(depth));
      case 4: return gt(gen(depth), gen(depth));
      default: return ge(gen(depth), gen(depth));
    }
  }

  std::string var_name() {
    static const char* names[] = {"i", "j", "n", "p", "w"};
    return names[rng_.next_in(0, 4)];
  }

 private:
  Expr leaf() {
    switch (rng_.next_in(0, 3)) {
      case 0: return Expr::integer(rng_.next_in(-4, 9));
      case 1: return Expr::real(static_cast<double>(rng_.next_in(-8, 16)) * 0.25);
      default: return Expr::var(var_name());
    }
  }

  Rng rng_;
};

TEST(CompiledExpr, AgreesWithTreeWalkOnRandomDags) {
  int evaluated = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    ExprGen gen(seed);
    const Expr e = gen.gen(4);
    const CompiledExpr ce = CompiledExpr::compile(e);

    Rng env_rng(seed * 977);
    for (int trial = 0; trial < 8; ++trial) {
      MapEnv env;
      for (const char* name : {"i", "j", "n", "p", "w"}) {
        const auto kind = env_rng.next_in(0, 3);
        if (kind == 0) continue;  // leave unbound
        if (kind == 1) {
          env.set(name, Value(env_rng.next_in(-3, 6)));
        } else {
          env.set(name,
                  Value(static_cast<double>(env_rng.next_in(-6, 12)) * 0.5));
        }
      }
      const Outcome want = tree_eval(e, env);
      const Outcome got = compiled_eval(ce, env);
      ASSERT_TRUE(got == want)
          << "seed " << seed << " trial " << trial
          << "\nexpr: " << e.to_string() << "\ntree:     "
          << outcome_str(want) << "\ncompiled: " << outcome_str(got);
      ++evaluated;
    }
  }
  EXPECT_GE(evaluated, 3000);
}

TEST(CompiledExpr, SelectEvaluatesOnlyTakenBranch) {
  // The untaken branch divides by zero and reads an unbound variable;
  // neither may fire, exactly like the tree walker.
  const Expr e = select(gt(Expr::var("n"), Expr::integer(0)),
                        Expr::var("n") * 2,
                        Expr::var("ghost") / Expr::integer(0));
  const CompiledExpr ce = CompiledExpr::compile(e);
  MapEnv env;
  env.set("n", Value(std::int64_t{21}));
  const Value v = ce.eval(env);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);

  env.set("n", Value(std::int64_t{-1}));
  EXPECT_THROW(ce.eval(env), EvalError);
}

TEST(CompiledExpr, SumBinderShadowsFreeVariable) {
  // sum_{i=1..3} i*w  with free i also in the environment: the binder must
  // shadow it inside the body and the outer binding must survive.
  const Expr body = Expr::var("i") * Expr::var("w");
  const Expr e =
      sum("i", Expr::integer(1), Expr::integer(3), body) + Expr::var("i");
  const CompiledExpr ce = CompiledExpr::compile(e);
  MapEnv env;
  env.set("i", Value(std::int64_t{100}));
  env.set("w", Value(std::int64_t{10}));
  EXPECT_EQ(ce.eval(env).as_int(), (1 + 2 + 3) * 10 + 100);
  EXPECT_EQ(e.eval(env).as_int(), (1 + 2 + 3) * 10 + 100);
}

TEST(CompiledExpr, SumSwitchesToRealAtFirstRealTerm) {
  // Matches the tree walker's int-until-first-real accumulation.
  const Expr e = sum("i", Expr::integer(1), Expr::integer(4),
                     select(ge(Expr::var("i"), Expr::integer(3)),
                            Expr::real(0.5), Expr::var("i")));
  const CompiledExpr ce = CompiledExpr::compile(e);
  MapEnv env;
  const Value vt = e.eval(env);
  const Value vc = ce.eval(env);
  EXPECT_FALSE(vt.is_int());
  EXPECT_FALSE(vc.is_int());
  EXPECT_DOUBLE_EQ(vc.as_real(), vt.as_real());
}

TEST(CompiledExpr, UnboundSlotThrowsOnlyWhenRead) {
  const Expr e = Expr::var("missing") + Expr::integer(1);
  const CompiledExpr ce = CompiledExpr::compile(e);
  CompiledExpr::Scratch scratch;
  ce.prepare(scratch);
  try {
    ce.eval(scratch);
    FAIL() << "expected EvalError";
  } catch (const EvalError& err) {
    EXPECT_STREQ(err.what(), "unbound variable 'missing'");
  }
}

TEST(CompiledExpr, DomainErrorsMatchTreeWalker) {
  MapEnv env;
  for (const Expr& e : {Expr::integer(1) / Expr::integer(0),
                        idiv(Expr::integer(1), Expr::integer(0)),
                        imod(Expr::integer(1), Expr::integer(0))}) {
    const Outcome want = tree_eval(e, env);
    const Outcome got = compiled_eval(CompiledExpr::compile(e), env);
    ASSERT_FALSE(want.value.has_value());
    EXPECT_TRUE(got == want) << e.to_string();
  }
}

TEST(CompiledExpr, ScratchIsReusableAcrossExpressions) {
  CompiledExpr::Scratch scratch;
  const Expr a = Expr::var("x") * Expr::integer(3);
  const Expr b = sum("k", Expr::integer(0), Expr::var("x"), Expr::var("k"));
  const CompiledExpr ca = CompiledExpr::compile(a);
  const CompiledExpr cb = CompiledExpr::compile(b);
  for (int x = 0; x < 10; ++x) {
    ca.prepare(scratch);
    scratch.slots[static_cast<std::size_t>(ca.free_slots()[0])] =
        Value(std::int64_t{x});
    scratch.bound[static_cast<std::size_t>(ca.free_slots()[0])] = 1;
    EXPECT_EQ(ca.eval(scratch).as_int(), 3 * x);
    cb.prepare(scratch);
    scratch.slots[static_cast<std::size_t>(cb.free_slots()[0])] =
        Value(std::int64_t{x});
    scratch.bound[static_cast<std::size_t>(cb.free_slots()[0])] = 1;
    EXPECT_EQ(cb.eval(scratch).as_int(), x * (x + 1) / 2);
  }
}

}  // namespace
}  // namespace stgsim::sym
