// Tests for the shared run-configuration surface: machine registry and
// spec-string parsing (harness/machines.hpp) and the RunSpec/RunOutcome
// JSON schema with its content-address digests (harness/config_json.hpp).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/config_json.hpp"
#include "harness/digest.hpp"
#include "harness/machines.hpp"
#include "harness/runner.hpp"
#include "support/errors.hpp"
#include "support/json.hpp"

namespace stgsim {
namespace {

// ---------------------------------------------------------------------------
// Machine registry + spec strings
// ---------------------------------------------------------------------------

TEST(MachineSpecString, BaseMachinesRoundTrip) {
  for (const std::string& name : harness::machine_names()) {
    const harness::MachineSpec m = harness::base_machine(name);
    EXPECT_EQ(harness::machine_spec_string(m), name);
    const harness::MachineSpec again =
        harness::parse_machine_spec(harness::machine_spec_string(m));
    EXPECT_EQ(harness::machine_spec_string(again), name);
  }
}

TEST(MachineSpecString, LegacySpAliasMapsToIbmSp) {
  const harness::MachineSpec m = harness::parse_machine_spec("sp");
  EXPECT_EQ(m.key, "ibm_sp");
  EXPECT_EQ(harness::machine_spec_string(m), "ibm_sp");
}

TEST(MachineSpecString, OverridesApplyAndRoundTrip) {
  const harness::MachineSpec m =
      harness::parse_machine_spec("ibm_sp[latency_us=30,bw=120e6]");
  const harness::MachineSpec base = harness::base_machine("ibm_sp");
  EXPECT_EQ(m.net.latency, vtime_from_us(30));
  EXPECT_EQ(m.net.bytes_per_sec, 120e6);
  // Untouched fields stay at the base values.
  EXPECT_EQ(m.net.send_overhead, base.net.send_overhead);
  EXPECT_EQ(m.compute.flop_time_ns, base.compute.flop_time_ns);

  // Canonical string mentions exactly the overridden fields and parses
  // back to the same machine.
  const std::string spec = harness::machine_spec_string(m);
  EXPECT_EQ(spec, "ibm_sp[latency_us=30,bw=120000000]");
  EXPECT_EQ(harness::machine_spec_string(harness::parse_machine_spec(spec)),
            spec);
}

TEST(MachineSpecString, OverrideEqualToBaseIsCanonicallyAbsent) {
  const double base_bw = harness::base_machine("origin2000").net.bytes_per_sec;
  const harness::MachineSpec m = harness::parse_machine_spec(
      "origin2000[bw=" + json::format_double(base_bw) + "]");
  EXPECT_EQ(harness::machine_spec_string(m), "origin2000");
}

TEST(MachineSpecString, StructuredErrors) {
  // Unknown machine: error lists registered names.
  try {
    (void)harness::parse_machine_spec("cray_t3e");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ibm_sp"), std::string::npos);
  }
  // Unknown override key: error lists accepted keys.
  try {
    (void)harness::parse_machine_spec("ibm_sp[warp_factor=9]");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("latency_us"), std::string::npos);
  }
  for (const char* bad :
       {"ibm_sp[", "ibm_sp[latency_us]", "ibm_sp[latency_us=]",
        "ibm_sp[latency_us=fast]", "ibm_sp[]x", "ibm_sp[latency_us=1"}) {
    EXPECT_THROW((void)harness::parse_machine_spec(bad), std::runtime_error)
        << bad;
  }
}

TEST(MachineSpecString, WhitespaceTolerantBetweenOverrides) {
  const harness::MachineSpec m =
      harness::parse_machine_spec("ibm_sp[latency_us=30, bw=120e6]");
  EXPECT_EQ(m.net.bytes_per_sec, 120e6);
}

// ---------------------------------------------------------------------------
// RunSpec JSON schema
// ---------------------------------------------------------------------------

harness::RunSpec sample_spec() {
  harness::RunSpec spec;
  spec.app = "sample";
  spec.app_options = {{"iters", "3"}, {"work", "2000"}};
  spec.config.nprocs = 4;
  spec.config.mode = harness::Mode::kDirectExec;
  spec.config.seed = 7;
  return spec;
}

TEST(RunSpecJson, RoundTripsExactly) {
  harness::RunSpec spec = sample_spec();
  spec.config.machine = harness::parse_machine_spec("ibm_sp[latency_us=30]");
  spec.config.threads = 2;
  spec.config.partition = simk::PartitionMode::kInterleave;
  spec.config.memory_cap_bytes = 64 << 20;
  spec.config.faults = fault::parse_fault_plan(
      "link:src=0,dst=1,latency=4,bandwidth=0.25;straggler:rank=2,factor=2");
  spec.config.max_virtual_time = vtime_from_sec(1.5);

  const json::Value doc = harness::run_spec_to_json(spec);
  const harness::RunSpec back = harness::run_spec_from_json(doc);
  // to_json of the parsed spec reproduces the document byte-for-byte.
  EXPECT_EQ(harness::run_spec_to_json(back).dump(), doc.dump());
  EXPECT_EQ(back.config.nprocs, 4);
  EXPECT_EQ(back.config.threads, 2);
  EXPECT_EQ(back.config.memory_cap_bytes, std::size_t{64} << 20);
  EXPECT_EQ(back.config.faults.to_string(), spec.config.faults.to_string());
  EXPECT_EQ(harness::machine_spec_string(back.config.machine),
            "ibm_sp[latency_us=30]");
}

TEST(RunSpecJson, CanonicalFormFillsAppOptionDefaults) {
  const json::Value doc = harness::run_spec_to_json(sample_spec());
  // All four sample options appear even though only two were given.
  const json::Value& opts = doc.at("options");
  EXPECT_TRUE(opts.has("iters"));
  EXPECT_TRUE(opts.has("pattern"));
  EXPECT_TRUE(opts.has("msg-doubles"));
  EXPECT_TRUE(opts.has("work"));
  EXPECT_EQ(opts.at("pattern").as_string(), "nn");
}

TEST(RunSpecJson, UnknownKeysAreStructuredErrors) {
  json::Value doc = harness::run_spec_to_json(sample_spec());
  doc.set("turbo", json::Value(true));
  EXPECT_THROW((void)harness::run_spec_from_json(doc), std::runtime_error);

  json::Value doc2 = harness::run_spec_to_json(sample_spec());
  json::Value opts = doc2.at("options");
  opts.set("bogus_option", json::Value(1));
  doc2.set("options", opts);
  EXPECT_THROW((void)harness::run_spec_from_json(doc2), std::runtime_error);
}

TEST(RunSpecJson, FormattingDoesNotChangeTheDigest) {
  const json::Value doc = harness::run_spec_to_json(sample_spec());
  // Re-parse from pretty-printed text: same digest.
  const harness::RunSpec a = harness::run_spec_from_json(doc);
  const harness::RunSpec b =
      harness::run_spec_from_json(json::Value::parse(doc.dump(4)));
  EXPECT_EQ(harness::run_spec_digest(a), harness::run_spec_digest(b));
}

TEST(RunSpecJson, DigestIsSensitiveToSeedMachineAndFault) {
  const harness::RunSpec base = sample_spec();
  const std::uint64_t d0 = harness::run_spec_digest(base);

  harness::RunSpec seed = base;
  seed.config.seed = 8;
  EXPECT_NE(harness::run_spec_digest(seed), d0);

  harness::RunSpec machine = base;
  machine.config.machine = harness::parse_machine_spec("ibm_sp[latency_us=1]");
  EXPECT_NE(harness::run_spec_digest(machine), d0);

  harness::RunSpec faulted = base;
  faulted.config.faults =
      fault::parse_fault_plan("straggler:rank=0,factor=2");
  EXPECT_NE(harness::run_spec_digest(faulted), d0);

  harness::RunSpec procs = base;
  procs.config.nprocs = 8;
  EXPECT_NE(harness::run_spec_digest(procs), d0);
}

TEST(RunSpecJson, IrrelevantCalibrateCountIsCanonicalizedOut) {
  // A de-mode run swept with "calibrate" digests the same as one without:
  // calibration cannot affect its prediction.
  harness::RunSpec with = sample_spec();
  with.calibrate_procs = 16;
  EXPECT_EQ(harness::run_spec_digest(with),
            harness::run_spec_digest(sample_spec()));

  // For analytical runs without inline params it IS part of the address...
  harness::RunSpec am = sample_spec();
  am.config.mode = harness::Mode::kAnalytical;
  am.calibrate_procs = 16;
  harness::RunSpec am8 = am;
  am8.calibrate_procs = 8;
  EXPECT_NE(harness::run_spec_digest(am), harness::run_spec_digest(am8));

  // ...but once params are resolved inline, they alone define the run.
  am.config.params = {{"w_x", 1e-6}};
  am8.config.params = {{"w_x", 1e-6}};
  EXPECT_EQ(harness::run_spec_digest(am), harness::run_spec_digest(am8));
}

TEST(RunSpecJson, FaultPlanStringRoundTripsLossslessly) {
  const std::string spec =
      "link:src=0,dst=1,latency=4,bandwidth=0.25,from=0.001;"
      "straggler:rank=2,factor=1.5";
  const fault::FaultPlan plan = fault::parse_fault_plan(spec);
  const fault::FaultPlan again = fault::parse_fault_plan(plan.to_string());
  EXPECT_EQ(plan.to_string(), again.to_string());
}

// ---------------------------------------------------------------------------
// RunOutcome serialization
// ---------------------------------------------------------------------------

TEST(RunSpecJson, EveryPublishedSchemaVersionRoundTrips) {
  // A spec document may carry an explicit "schema" key naming any
  // published version; parsing accepts it, and the canonical form (which
  // omits the key) is identical across versions — the digest never
  // depends on which accepted version the document claimed.
  json::Value base = json::Value::parse(R"({
    "app": "sample", "procs": 2, "mode": "de", "seed": 9,
    "options": {"iters": "2", "work": "1000"}
  })");
  const harness::RunSpec plain = harness::run_spec_from_json(base);
  const std::string canonical = harness::run_spec_to_json(plain).dump();
  ASSERT_FALSE(harness::published_schema_versions().empty());
  EXPECT_EQ(harness::published_schema_versions().back(),
            harness::kSimulatorVersion);
  for (const std::string& version : harness::published_schema_versions()) {
    EXPECT_TRUE(harness::schema_version_supported(version)) << version;
    json::Value doc = base;
    doc.set("schema", version);
    const harness::RunSpec spec = harness::run_spec_from_json(doc);
    EXPECT_EQ(harness::run_spec_to_json(spec).dump(), canonical) << version;
    EXPECT_EQ(harness::run_spec_digest_hex(spec),
              harness::run_spec_digest_hex(plain))
        << version;
  }
}

TEST(RunSpecJson, UnknownSchemaVersionIsAStructuredRejection) {
  json::Value doc = json::Value::parse(R"({
    "schema": "stgsim-99", "app": "sample", "procs": 2, "mode": "de"
  })");
  try {
    harness::run_spec_from_json(doc);
    FAIL() << "unknown schema version must be rejected";
  } catch (const errors::StructuredError& e) {
    EXPECT_EQ(e.code(), "usage.unsupported_schema");
    EXPECT_EQ(e.category(), errors::kCategoryUsage);
    // The rejection lists what IS supported.
    const auto& supported = e.detail().at("supported").as_array();
    ASSERT_FALSE(supported.empty());
    EXPECT_EQ(supported.back().as_string(), harness::kSimulatorVersion);
  }
  EXPECT_FALSE(harness::schema_version_supported("stgsim-99"));
}

TEST(RunSpecJson, PublishedJsonSchemasNameTheCurrentVersion) {
  const json::Value spec_schema = harness::run_spec_schema_json();
  EXPECT_EQ(spec_schema.at("$id").as_string(), "stgsim-8/run-spec");
  EXPECT_TRUE(spec_schema.at("properties").has("max_host_sec"));
  const json::Value outcome_schema = harness::run_outcome_schema_json();
  EXPECT_EQ(outcome_schema.at("$id").as_string(), "stgsim-8/run-outcome");
  EXPECT_TRUE(outcome_schema.at("properties").has("digest"));
}

TEST(OutcomeJson, RoundTripPreservesDigest) {
  harness::RunOutcome out;
  out.status = harness::RunStatus::kOk;
  out.nprocs = 2;
  out.predicted_time = 123456789;
  out.per_rank = {123456789, 123450000};
  out.messages = 42;
  out.slices = 17;
  out.peak_target_bytes = 1 << 20;
  out.sim_host_seconds = 0.25;
  smpi::RankStats s;
  s.compute_time = 1000;
  s.comm_time = 2000;
  s.sends = 3;
  s.recvs = 4;
  s.collectives = 5;
  s.delays = 6;
  s.bytes_sent = 7;
  out.per_rank_stats = {s, s};
  out.stats = s;
  out.metrics.add("engine.slices", 17.0);
  out.metrics.msg_size_hist = {0, 2, 1};

  const json::Value doc = harness::outcome_to_json(out);
  const harness::RunOutcome back = harness::outcome_from_json(doc);
  EXPECT_EQ(harness::run_digest(back), harness::run_digest(out));
  EXPECT_EQ(doc.at("digest").as_string(), harness::run_digest_hex(back));
  EXPECT_EQ(back.messages, 42u);
  EXPECT_EQ(back.per_rank_stats.size(), 2u);
  EXPECT_EQ(back.metrics.msg_size_hist.size(), 3u);
  // Serialization is stable through a round trip.
  EXPECT_EQ(harness::outcome_to_json(back).dump(), doc.dump());
}

}  // namespace
}  // namespace stgsim
