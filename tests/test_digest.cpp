// Bit-identity regression tests: golden run digests captured from the
// pre-refactor engine (PR 2). Any change to scheduling order, message
// matching, payload handling, or expression evaluation that alters a
// single predicted clock tick, message count, or delivered byte changes
// the digest and fails these tests — under either scheduler.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "apps/nas_sp.hpp"
#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "core/compiler.hpp"
#include "fault/fault.hpp"
#include "harness/digest.hpp"
#include "harness/runner.hpp"
#include "ir/builder.hpp"

namespace stgsim {
namespace {

std::uint64_t digest_of(const ir::Program& prog, int nprocs, int threads,
                        harness::Mode mode,
                        const std::map<std::string, double>& params = {},
                        const fault::FaultPlan& faults = {}) {
  harness::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.mode = mode;
  cfg.threads = threads;
  cfg.params = params;
  cfg.faults = faults;
  harness::RunOutcome out = harness::run_program(prog, cfg);
  EXPECT_TRUE(out.ok()) << out.diagnostic;
  return harness::run_digest(out);
}

// Prints the digest so new goldens can be harvested when a PR
// *intentionally* changes predictions (which this PR must not).
void expect_golden(const char* name, std::uint64_t actual,
                   std::uint64_t golden) {
  std::fprintf(stderr, "GOLDEN %-24s 0x%016llx\n", name,
               static_cast<unsigned long long>(actual));
  EXPECT_EQ(actual, golden) << name;
}

// --- Direct-execution (MPI-SIM-DE) digests, both schedulers ------------

constexpr std::uint64_t kGoldenTomcatv = 0xf7a88373c8256116ULL;
constexpr std::uint64_t kGoldenSweep3D = 0xae531a8f3b6690cfULL;
constexpr std::uint64_t kGoldenNasSp = 0x4ce19daf4497acf2ULL;
constexpr std::uint64_t kGoldenSample = 0x49d6f41b672638d5ULL;

TEST(RunDigest, TomcatvDE) {
  apps::TomcatvConfig c;
  c.n = 128;
  c.iterations = 2;
  ir::Program prog = apps::make_tomcatv(c);
  expect_golden("tomcatv/seq", digest_of(prog, 8, 0, harness::Mode::kDirectExec),
                kGoldenTomcatv);
  expect_golden("tomcatv/thr3",
                digest_of(prog, 8, 3, harness::Mode::kDirectExec),
                kGoldenTomcatv);
}

TEST(RunDigest, Sweep3DDE) {
  apps::Sweep3DConfig c;
  c.it = 2;
  c.jt = 2;
  c.kt = 12;
  c.kb = 4;
  c.mm = 2;
  c.mmi = 1;
  c.npe_i = 2;
  c.npe_j = 2;
  ir::Program prog = apps::make_sweep3d(c);
  expect_golden("sweep3d/seq", digest_of(prog, 4, 0, harness::Mode::kDirectExec),
                kGoldenSweep3D);
  expect_golden("sweep3d/thr3",
                digest_of(prog, 4, 3, harness::Mode::kDirectExec),
                kGoldenSweep3D);
}

TEST(RunDigest, NasSpDE) {
  apps::NasSpConfig c = apps::sp_class('A', 2, 2);
  ir::Program prog = apps::make_nas_sp(c);
  expect_golden("nas_sp/seq", digest_of(prog, 4, 0, harness::Mode::kDirectExec),
                kGoldenNasSp);
  expect_golden("nas_sp/thr3",
                digest_of(prog, 4, 3, harness::Mode::kDirectExec),
                kGoldenNasSp);
}

TEST(RunDigest, SampleDE) {
  apps::SampleConfig c;
  c.iterations = 5;
  c.msg_doubles = 256;
  c.work_iters = 1000;
  ir::Program prog = apps::make_sample(c);
  expect_golden("sample/seq", digest_of(prog, 8, 0, harness::Mode::kDirectExec),
                kGoldenSample);
  expect_golden("sample/thr3",
                digest_of(prog, 8, 3, harness::Mode::kDirectExec),
                kGoldenSample);
}

// --- Analytical-model (MPI-SIM-AM) digests: the delay() hot path -------

constexpr std::uint64_t kGoldenSampleAM = 0xa5becb21e60ea472ULL;
constexpr std::uint64_t kGoldenSweep3DAM = 0x765ecbee93c01d13ULL;

TEST(RunDigest, SampleAM) {
  apps::SampleConfig c;
  c.iterations = 5;
  c.msg_doubles = 256;
  c.work_iters = 1000;
  ir::Program prog = apps::make_sample(c);
  core::CompileResult compiled = core::compile(prog);
  auto params = harness::estimate_params(prog, 8, harness::ibm_sp_machine(),
                                         compiled.simplified.params);
  expect_golden("sample-am/seq",
                digest_of(compiled.simplified.program, 8, 0,
                          harness::Mode::kAnalytical, params),
                kGoldenSampleAM);
  expect_golden("sample-am/thr3",
                digest_of(compiled.simplified.program, 8, 3,
                          harness::Mode::kAnalytical, params),
                kGoldenSampleAM);
}

TEST(RunDigest, Sweep3DAM) {
  apps::Sweep3DConfig c;
  c.it = 2;
  c.jt = 2;
  c.kt = 12;
  c.kb = 4;
  c.mm = 2;
  c.mmi = 1;
  c.npe_i = 2;
  c.npe_j = 2;
  ir::Program prog = apps::make_sweep3d(c);
  core::CompileResult compiled = core::compile(prog);
  auto params = harness::estimate_params(prog, 4, harness::ibm_sp_machine(),
                                         compiled.simplified.params);
  expect_golden("sweep3d-am/seq",
                digest_of(compiled.simplified.program, 4, 0,
                          harness::Mode::kAnalytical, params),
                kGoldenSweep3DAM);
  expect_golden("sweep3d-am/thr3",
                digest_of(compiled.simplified.program, 4, 3,
                          harness::Mode::kAnalytical, params),
                kGoldenSweep3DAM);
}

// --- Fault-degraded runs: digests must agree across schedulers ---------

TEST(RunDigest, FaultedCrossScheduler) {
  apps::SampleConfig c;
  c.iterations = 5;
  c.msg_doubles = 256;
  c.work_iters = 1000;
  ir::Program prog = apps::make_sample(c);
  fault::FaultPlan plan = fault::parse_fault_plan(
      "link:src=0,dst=1,latency=4,bandwidth=0.25;straggler:rank=2,factor=2");
  const std::uint64_t seq =
      digest_of(prog, 8, 0, harness::Mode::kDirectExec, {}, plan);
  const std::uint64_t thr =
      digest_of(prog, 8, 3, harness::Mode::kDirectExec, {}, plan);
  std::fprintf(stderr, "GOLDEN %-24s 0x%016llx\n", "sample-fault/seq",
               static_cast<unsigned long long>(seq));
  EXPECT_EQ(seq, thr);
}

// --- Wildcard-receive race: the correctness bug this PR fixes ----------
//
// Rank 0's 16 KiB eager message reaches rank 1 long before rank 2's tiny
// one (rank 2 is off in a 50us delay when rank 1 posts its first
// ANY_SOURCE receive). An engine that commits a wildcard receive to
// whatever has already arrived picks rank 0 first under the sequential
// scheduler, but rank 2 first under the threaded one (where both
// messages flush at the same round barrier) — diverging digests. With
// the safe-bound gate both schedulers commit to the earliest *arrival*
// (rank 2's), and the digests agree.
TEST(RunDigest, WildcardRaceAgreesAcrossSchedulers) {
  auto I = [](std::int64_t v) { return sym::Expr::integer(v); };
  ir::ProgramBuilder b("wildcard_race");
  sym::Expr myid = b.get_rank("myid");
  b.get_size("P");
  b.decl_array("BUF", {I(2048)});  // 16 KiB: at the eager threshold
  b.if_then_else(
      sym::eq(myid, I(0)), [&] { b.send("BUF", I(1), I(2048), I(0), 7); },
      [&] {
        b.if_then_else(
            sym::eq(myid, I(2)),
            [&] {
              b.delay(sym::Expr::real(50e-6));
              b.send("BUF", I(1), I(1), I(0), 7);
            },
            [&] {
              b.recv("BUF", I(-1), I(2048), I(0), 7);  // ANY_SOURCE
              b.recv("BUF", I(-1), I(2048), I(0), 7);
            });
      });
  ir::Program prog = b.take();
  const std::uint64_t seq = digest_of(prog, 3, 0, harness::Mode::kDirectExec);
  const std::uint64_t thr = digest_of(prog, 3, 3, harness::Mode::kDirectExec);
  std::fprintf(stderr, "GOLDEN %-24s 0x%016llx\n", "wildcard-race/seq",
               static_cast<unsigned long long>(seq));
  EXPECT_EQ(seq, thr);
}

// Digest must not depend on host wall-clock: two identical runs agree.
TEST(RunDigest, StableAcrossRepeatedRuns) {
  apps::SampleConfig c;
  c.iterations = 3;
  c.msg_doubles = 64;
  c.work_iters = 500;
  ir::Program prog = apps::make_sample(c);
  EXPECT_EQ(digest_of(prog, 4, 0, harness::Mode::kDirectExec),
            digest_of(prog, 4, 0, harness::Mode::kDirectExec));
}

}  // namespace
}  // namespace stgsim
