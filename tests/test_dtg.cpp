// Tests for dynamic task graph recording and its cross-validation against
// the static task graph.
#include <gtest/gtest.h>

#include "apps/tomcatv.hpp"
#include "core/compiler.hpp"
#include "core/dtg.hpp"
#include "harness/runner.hpp"
#include "ir/builder.hpp"
#include "smpi/smpi.hpp"

namespace stgsim::core {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

Dtg record_run(const ir::Program& prog, int nprocs) {
  DtgRecorder recorder;
  DtgObserver observer(&recorder);
  smpi::World::Options wopts;
  smpi::World world(wopts, nprocs);
  simk::EngineConfig ec;
  ec.num_processes = nprocs;
  simk::Engine engine(ec);
  ir::ExecOptions xopts;
  xopts.observer = &observer;
  engine.set_body([&](simk::Process& p) {
    smpi::Comm comm(world, p);
    ir::execute(prog, comm, xopts);
  });
  engine.run();
  return recorder.build();
}

ir::Program make_pipeline(int rounds) {
  ir::ProgramBuilder b("dtg_pipeline");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");
  b.decl_array("A", {I(64)});
  ir::KernelSpec k;
  k.task = "work";
  k.iters = I(500);
  k.writes = {"A"};
  b.for_loop("r", I(1), I(rounds), [&](Expr) {
    b.if_then(sym::gt(myid, I(0)),
              [&] { b.recv("A", myid - 1, I(16), I(0), 3); });
    b.compute(ir::KernelSpec(k));
    b.if_then(sym::lt(myid, P - 1),
              [&] { b.send("A", myid + 1, I(16), I(0), 3); });
  });
  b.barrier();
  return b.take();
}

TEST(Dtg, InstanceCountsMatchTheUnfolding) {
  const int nprocs = 4;
  const int rounds = 3;
  Dtg dtg = record_run(make_pipeline(rounds), nprocs);
  // Every rank computes `rounds` times.
  EXPECT_EQ(dtg.count(DtgNodeKind::kCompute),
            static_cast<std::size_t>(nprocs * rounds));
  // Ranks 0..P-2 send each round; ranks 1..P-1 receive each round.
  EXPECT_EQ(dtg.count(DtgNodeKind::kSend),
            static_cast<std::size_t>((nprocs - 1) * rounds));
  EXPECT_EQ(dtg.count(DtgNodeKind::kRecv),
            static_cast<std::size_t>((nprocs - 1) * rounds));
  EXPECT_EQ(dtg.count(DtgNodeKind::kCollective),
            static_cast<std::size_t>(nprocs));  // one barrier each
}

TEST(Dtg, MessageEdgesPairEverySend) {
  Dtg dtg = record_run(make_pipeline(3), 4);
  EXPECT_EQ(dtg.msg_edges.size(), dtg.count(DtgNodeKind::kSend));
  EXPECT_EQ(dtg.check_consistency(), "");
}

TEST(Dtg, InstancesOfRankAreProgramOrdered) {
  Dtg dtg = record_run(make_pipeline(2), 3);
  const auto seq = dtg.instances_of(1);
  // Rank 1: (recv, compute, send) x2 then the barrier.
  ASSERT_EQ(seq.size(), 7u);
  EXPECT_EQ(seq[0]->kind, DtgNodeKind::kRecv);
  EXPECT_EQ(seq[1]->kind, DtgNodeKind::kCompute);
  EXPECT_EQ(seq[2]->kind, DtgNodeKind::kSend);
  EXPECT_EQ(seq[6]->kind, DtgNodeKind::kCollective);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_GE(seq[i]->start, seq[i - 1]->start);
  }
}

TEST(Dtg, ValidatesAgainstTheStaticGraph) {
  ir::Program prog = make_pipeline(2);
  Stg stg = synthesize_stg(prog);
  Dtg dtg = record_run(prog, 4);
  EXPECT_EQ(dtg.check_against_stg(
                stg, {{"P", sym::Value(std::int64_t{4})}}),
            "");
}

TEST(Dtg, GuardViolationIsDetected) {
  // Forge an instance claiming rank 0 executed the guarded send.
  ir::Program prog = make_pipeline(1);
  Stg stg = synthesize_stg(prog);
  Dtg dtg = record_run(prog, 3);

  // Find a send node and corrupt its rank to 0 (the guard is myid < P-1
  // for sends... rank 0 IS allowed to send; the recv guard is myid > 0).
  for (auto& n : dtg.nodes) {
    if (n.kind == DtgNodeKind::kRecv) {
      n.rank = 0;  // rank 0 never receives in this pipeline
      break;
    }
  }
  const std::string err =
      dtg.check_against_stg(stg, {{"P", sym::Value(std::int64_t{3})}});
  EXPECT_NE(err.find("excludes"), std::string::npos) << err;
}

TEST(Dtg, TomcatvRunValidatesEndToEnd) {
  apps::TomcatvConfig cfg;
  cfg.n = 64;
  cfg.iterations = 2;
  ir::Program prog = apps::make_tomcatv(cfg);
  Stg stg = synthesize_stg(prog);
  Dtg dtg = record_run(prog, 4);
  EXPECT_EQ(dtg.check_consistency(), "");
  EXPECT_EQ(dtg.check_against_stg(stg, {{"P", sym::Value(std::int64_t{4})}}),
            "");
  EXPECT_GT(dtg.msg_edges.size(), 0u);
}

TEST(Dtg, DotAndSummaryRender) {
  Dtg dtg = record_run(make_pipeline(1), 3);
  const std::string dot = dtg.to_dot();
  EXPECT_NE(dot.find("digraph dtg"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dtg.summary().find("task instances"), std::string::npos);
}

TEST(Dtg, SimplifiedProgramProducesSameCommSkeleton) {
  // The DTG of the simplified program, with compute instances removed,
  // must have the same per-rank comm instance sequence as the original's
  // (another phrasing of the §3 correctness contract).
  ir::Program prog = make_pipeline(2);
  const int nprocs = 4;
  core::CompileResult compiled = core::compile(prog);
  const auto params =
      harness::calibrate(compiled.timer_program, nprocs,
                         harness::ibm_sp_machine(), compiled.simplified.params);

  Dtg original = record_run(prog, nprocs);

  DtgRecorder recorder;
  DtgObserver observer(&recorder);
  smpi::World::Options wopts;
  smpi::World world(wopts, nprocs);
  for (const auto& [k, v] : params) world.set_param(k, v);
  simk::EngineConfig ec;
  ec.num_processes = nprocs;
  simk::Engine engine(ec);
  ir::ExecOptions xopts;
  xopts.observer = &observer;
  engine.set_body([&](simk::Process& p) {
    smpi::Comm comm(world, p);
    ir::execute(compiled.simplified.program, comm, xopts);
  });
  engine.run();
  Dtg simplified = recorder.build();

  auto comm_skeleton = [](const Dtg& d, int rank) {
    std::vector<std::tuple<DtgNodeKind, int, int, std::size_t>> out;
    for (const auto* n : d.instances_of(rank)) {
      if (n->kind == DtgNodeKind::kCompute) continue;
      out.emplace_back(n->kind, n->peer, n->tag, n->bytes);
    }
    return out;
  };
  for (int r = 0; r < nprocs; ++r) {
    EXPECT_EQ(comm_skeleton(original, r), comm_skeleton(simplified, r))
        << "rank " << r;
  }
}

}  // namespace
}  // namespace stgsim::core
