// Unit tests for the PDES kernel: fibers, message delivery, scheduling
// determinism, the threaded conservative mode, abort unwinding, and the
// host-trace replay model.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/worker_pool.hpp"

namespace stgsim::simk {
namespace {

// ---------------------------------------------------------------------------
// Fibers
// ---------------------------------------------------------------------------

TEST(Fiber, RunsBodyToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; }, 64 * 1024);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> log;
  Fiber f(
      [&] {
        log.push_back(1);
        Fiber::yield_to_scheduler();
        log.push_back(3);
        Fiber::yield_to_scheduler();
        log.push_back(5);
      },
      64 * 1024);
  f.resume();
  log.push_back(2);
  f.resume();
  log.push_back(4);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentIsSetInsideFiberOnly) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* observed = nullptr;
  Fiber f([&] { observed = Fiber::current(); }, 64 * 1024);
  f.resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, DeepStackUsageSurvives) {
  // Recursion touching well under the stack size must work; the guard
  // page exists for the case beyond it (not testable without SIGSEGV).
  std::function<int(int)> rec = [&](int n) -> int {
    char pad[512];
    pad[0] = static_cast<char>(n);
    return n == 0 ? pad[0] : rec(n - 1) + 1;
  };
  int out = -1;
  Fiber f([&] { out = rec(200); }, 256 * 1024);
  f.resume();
  EXPECT_EQ(out, 200);
}

// ---------------------------------------------------------------------------
// Engine basics
// ---------------------------------------------------------------------------

Message make_msg(int src, int dst, int tag, VTime sent, VTime arrival) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.sent_at = sent;
  m.arrival = arrival;
  return m;
}

MatchSpec match_tag(int src, int tag) {
  MatchSpec s;
  s.src = src;
  s.tag = tag;
  return s;
}

TEST(Engine, SingleProcessAdvancesClock) {
  EngineConfig cfg;
  cfg.num_processes = 1;
  Engine e(cfg);
  e.set_body([](Process& p) {
    p.advance(vtime_from_us(10));
    p.advance(vtime_from_us(5));
  });
  auto r = e.run();
  EXPECT_EQ(r.completion, vtime_from_us(15));
  EXPECT_EQ(r.per_rank_completion.size(), 1u);
}

TEST(Engine, RunIsSingleShot) {
  EngineConfig cfg;
  Engine e(cfg);
  e.set_body([](Process&) {});
  e.run();
  EXPECT_THROW(e.run(), CheckError);
}

TEST(Engine, MessageDeliveryAndMaxSemantics) {
  EngineConfig cfg;
  cfg.num_processes = 2;
  Engine e(cfg);
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      p.advance(vtime_from_us(3));
      p.send(make_msg(0, 1, 7, p.now(), p.now() + vtime_from_us(10)));
    } else {
      Message m = p.blocking_match(match_tag(0, 7));
      p.lift_clock(m.arrival);
      // Receiver was at 0, message arrives at 13us.
      EXPECT_EQ(p.now(), vtime_from_us(13));
    }
  });
  auto r = e.run();
  EXPECT_EQ(r.per_rank_completion[1], vtime_from_us(13));
  EXPECT_EQ(r.messages_delivered, 1u);
}

TEST(Engine, LateReceiverKeepsItsOwnClock) {
  EngineConfig cfg;
  cfg.num_processes = 2;
  Engine e(cfg);
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      p.send(make_msg(0, 1, 1, 0, vtime_from_us(5)));
    } else {
      p.advance(vtime_from_us(100));  // receiver is past the arrival
      Message m = p.blocking_match(match_tag(0, 1));
      p.lift_clock(m.arrival);
      EXPECT_EQ(p.now(), vtime_from_us(100));  // max(100, 5)
    }
  });
  e.run();
}

TEST(Engine, FifoPerChannelMatchingOrder) {
  EngineConfig cfg;
  cfg.num_processes = 2;
  Engine e(cfg);
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      // Second message has an earlier arrival, but same tag: matching
      // must still deliver in send order (MPI non-overtaking).
      p.send(make_msg(0, 1, 5, 0, vtime_from_us(50)));
      p.send(make_msg(0, 1, 5, 0, vtime_from_us(10)));
    } else {
      p.advance(vtime_from_us(60));
      Message first = p.blocking_match(match_tag(0, 5));
      Message second = p.blocking_match(match_tag(0, 5));
      EXPECT_EQ(first.arrival, vtime_from_us(50));
      EXPECT_EQ(second.arrival, vtime_from_us(10));
      EXPECT_LT(first.seq, second.seq);
    }
  });
  e.run();
}

TEST(Engine, TagSelectiveMatchingSkipsNonMatching) {
  EngineConfig cfg;
  cfg.num_processes = 2;
  Engine e(cfg);
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      p.send(make_msg(0, 1, 1, 0, vtime_from_us(1)));
      p.send(make_msg(0, 1, 2, 0, vtime_from_us(2)));
    } else {
      Message m2 = p.blocking_match(match_tag(0, 2));
      EXPECT_EQ(m2.tag, 2);
      Message m1 = p.blocking_match(match_tag(0, 1));
      EXPECT_EQ(m1.tag, 1);
    }
  });
  e.run();
}

TEST(Engine, WildcardPicksEarliestArrivalAcrossSources) {
  EngineConfig cfg;
  cfg.num_processes = 3;
  Engine e(cfg);
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      p.send(make_msg(0, 2, 9, 0, vtime_from_us(30)));
    } else if (p.rank() == 1) {
      p.send(make_msg(1, 2, 9, 0, vtime_from_us(20)));
    } else {
      p.advance(vtime_from_us(100));  // both candidates present
      MatchSpec any;
      any.src = MatchSpec::kAnySource;
      any.tag = 9;
      Message first = p.blocking_match(any);
      EXPECT_EQ(first.src, 1);  // earlier arrival
      Message second = p.blocking_match(any);
      EXPECT_EQ(second.src, 0);
    }
  });
  e.run();
}

TEST(Engine, TryMatchDoesNotBlock) {
  EngineConfig cfg;
  cfg.num_processes = 1;
  Engine e(cfg);
  e.set_body([](Process& p) {
    Message out;
    EXPECT_FALSE(p.try_match(match_tag(0, 1), &out));
  });
  e.run();
}

TEST(Engine, UnionSpecMatchesAnyAlternative) {
  EngineConfig cfg;
  cfg.num_processes = 3;
  Engine e(cfg);
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      p.send(make_msg(0, 2, 5, 0, vtime_from_us(9)));
    } else if (p.rank() == 1) {
      p.send(make_msg(1, 2, 6, 0, vtime_from_us(4)));
    } else {
      p.advance(vtime_from_us(50));
      MatchSpec alts[2];
      alts[0].src = 0;
      alts[0].tag = 5;
      alts[1].src = 1;
      alts[1].tag = 6;
      MatchSpec united;
      united.src = MatchSpec::kAnySource;
      united.any_of = alts;
      united.any_of_count = 2;
      // Earliest arrival among the alternatives wins.
      Message first = p.blocking_match(united);
      EXPECT_EQ(first.src, 1);
      Message second = p.blocking_match(united);
      EXPECT_EQ(second.src, 0);
    }
  });
  e.run();
}

TEST(Engine, WildcardParksUntilSafeBoundThenPicksEarliest) {
  // The wildcard race this PR fixes. Rank 2 posts an ANY_SOURCE receive
  // while rank 0's message (arrival 100us) is already queued — but rank 1,
  // whose clock is still below arrival - min_latency, has yet to send an
  // *earlier*-arriving message (60us). Committing to the queued candidate
  // on sight is wrong: the receive must park until the safe bound
  // (min unfinished peer clock + min latency) passes the candidate's
  // arrival, then take the earliest arrival among all candidates.
  //
  // Slices are run-to-block, so the interleaving is forced with a token:
  // rank 1 blocks on rank 2's "go" message, guaranteeing rank 1 is still
  // unfinished (clock 0) at the moment rank 2 sees rank 0's candidate.
  EngineConfig cfg;
  cfg.num_processes = 3;
  Engine e(cfg);
  e.set_wildcard_min_latency(vtime_from_us(5));
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      p.send(make_msg(0, 2, 9, 0, vtime_from_us(100)));
    } else if (p.rank() == 1) {
      Message go = p.blocking_match(match_tag(2, 1));
      p.lift_clock(go.arrival);   // 30us
      p.advance(vtime_from_us(20));
      p.send(make_msg(1, 2, 9, p.now(), vtime_from_us(60)));
    } else {
      p.send(make_msg(2, 1, 1, 0, vtime_from_us(30)));
      MatchSpec any;
      any.src = MatchSpec::kAnySource;
      any.tag = 9;
      Message first = p.blocking_match(any);
      EXPECT_EQ(first.src, 1);  // the late-sent but earlier-arriving one
      EXPECT_EQ(first.arrival, vtime_from_us(60));
      Message second = p.blocking_match(any);
      EXPECT_EQ(second.src, 0);
    }
  });
  e.run();
}

TEST(Engine, KindAndAuxMatchingSelectsProtocolTraffic) {
  EngineConfig cfg;
  cfg.num_processes = 2;
  Engine e(cfg);
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      Message a = make_msg(0, 1, 3, 0, vtime_from_us(1));
      a.kind = 1;
      a.aux = 77;
      p.send(std::move(a));
      Message b = make_msg(0, 1, 3, 0, vtime_from_us(2));
      b.kind = 2;
      b.aux = 88;
      p.send(std::move(b));
    } else {
      MatchSpec s;
      s.src = 0;
      s.kind_mask = 1u << 2;
      s.match_aux = true;
      s.aux = 88;
      Message m = p.blocking_match(s);
      EXPECT_EQ(m.kind, 2);
      EXPECT_EQ(m.aux, 88u);
      // The kind-1 message is still queued and matchable afterwards.
      MatchSpec r;
      r.src = 0;
      r.kind_mask = 1u << 1;
      Message n = p.blocking_match(r);
      EXPECT_EQ(n.kind, 1);
    }
  });
  e.run();
}

// Regression for inbox memory growth: after heavy message churn the
// engine's overhead must be bounded by *peak in-flight* demand, not by the
// total number of messages exchanged.
TEST(Engine, PoolOverheadBoundedUnderChurn) {
  constexpr int kRounds = 5000;
  EngineConfig cfg;
  cfg.num_processes = 2;
  Engine e(cfg);
  e.set_body([](Process& p) {
    std::vector<std::uint8_t> buf(512, 0xab);
    const int peer = 1 - p.rank();
    for (int i = 0; i < kRounds; ++i) {
      if (p.rank() == 0) {
        Message m = make_msg(0, 1, 1, p.now(), p.now() + vtime_from_us(1));
        m.payload = p.make_payload(buf.data(), buf.size());
        p.send(std::move(m));
        Message ack = p.blocking_match(match_tag(peer, 2));
        p.lift_clock(ack.arrival);
      } else {
        Message m = p.blocking_match(match_tag(peer, 1));
        p.lift_clock(m.arrival);
        EXPECT_EQ(m.payload.size(), 512u);
        Message ack = make_msg(1, 0, 2, p.now(), p.now() + vtime_from_us(1));
        ack.payload = p.make_payload(buf.data(), buf.size());
        p.send(std::move(ack));
      }
    }
  });
  e.run();

  const auto arena = e.arena_stats();
  EXPECT_EQ(arena.live, 0u);          // every message was consumed
  EXPECT_LE(arena.capacity, 1024u);   // bounded by in-flight peak, not 10k
  const auto pool = e.payload_stats();
  EXPECT_EQ(pool.outstanding, 0u);
  EXPECT_LE(pool.retained_bytes, std::size_t{1} << 16);
}

TEST(Engine, DeadlockIsDetectedAndReported) {
  EngineConfig cfg;
  cfg.num_processes = 2;
  Engine e(cfg);
  e.set_body([](Process& p) {
    // Both wait for a message that never comes.
    p.blocking_match(match_tag(1 - p.rank(), 0));
  });
  EXPECT_THROW(e.run(), DeadlockError);
}

TEST(Engine, DeadlockErrorCarriesStructuredBlockedRanks) {
  EngineConfig cfg;
  cfg.num_processes = 2;
  Engine e(cfg);
  e.set_body([](Process& p) {
    p.advance(vtime_from_us(1 + p.rank()));
    MatchSpec s = match_tag(1 - p.rank(), 4);
    s.what = "recv";
    s.user_tag = 4;
    p.blocking_match(s);
  });
  try {
    e.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& d) {
    ASSERT_EQ(d.blocked().size(), 2u);
    for (const auto& b : d.blocked()) {
      EXPECT_EQ(b.clock, vtime_from_us(1 + b.rank));
      EXPECT_EQ(b.waiting_src, 1 - b.rank);
      EXPECT_EQ(b.waiting_tag, 4);
      EXPECT_EQ(b.waiting_what, "recv");
    }
    EXPECT_NE(std::string(d.what()).find("deadlock"), std::string::npos);
    EXPECT_NE(std::string(d.what()).find("tag=4"), std::string::npos);
  }
}

TEST(Engine, VirtualTimeBudgetStopsRunawayFiber) {
  EngineConfig cfg;
  cfg.num_processes = 1;
  cfg.max_virtual_time = vtime_from_us(100);
  Engine e(cfg);
  e.set_body([](Process& p) {
    for (;;) p.advance(vtime_from_us(1));  // never returns on its own
  });
  try {
    e.run();
    FAIL() << "expected BudgetExceededError";
  } catch (const BudgetExceededError& b) {
    EXPECT_EQ(b.kind(), BudgetExceededError::Kind::kVirtualTime);
  }
}

TEST(Engine, MessageBudgetStopsChatter) {
  EngineConfig cfg;
  cfg.num_processes = 2;
  cfg.max_messages = 50;
  Engine e(cfg);
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      for (;;) {
        p.send(make_msg(0, 1, 1, p.now(), p.now() + vtime_from_us(1)));
        p.advance(vtime_from_us(1));
      }
    }
    for (;;) p.blocking_match(match_tag(0, 1));
  });
  try {
    e.run();
    FAIL() << "expected BudgetExceededError";
  } catch (const BudgetExceededError& b) {
    EXPECT_EQ(b.kind(), BudgetExceededError::Kind::kMessages);
  }
}

TEST(Engine, HostWatchdogStopsSpinningRun) {
  EngineConfig cfg;
  cfg.num_processes = 1;
  cfg.max_host_seconds = 0.05;
  Engine e(cfg);
  e.set_body([](Process& p) {
    for (;;) p.advance(1);  // 1 ns per step: years of host time unchecked
  });
  try {
    e.run();
    FAIL() << "expected BudgetExceededError";
  } catch (const BudgetExceededError& b) {
    EXPECT_EQ(b.kind(), BudgetExceededError::Kind::kHostWallClock);
  }
}

TEST(Engine, HostWatchdogStopsSpinningThreadedWorker) {
  // Two ranks in the same partition ping-ponging zero-latency messages
  // never leave run_partition_until_blocked (every wake lands in the same
  // worker's ready list), so the between-rounds watchdog on the scheduler
  // thread never gets a chance — the in-loop probe inside the worker must
  // fire instead.
  EngineConfig cfg;
  cfg.num_processes = 2;
  cfg.use_threads = true;
  cfg.host_workers = 1;  // both ranks share one partition
  cfg.max_host_seconds = 0.2;
  Engine e(cfg);
  e.set_body([](Process& p) {
    MatchSpec from_peer;
    from_peer.src = 1 - p.rank();
    from_peer.tag = 1;
    if (p.rank() == 0) p.send(make_msg(0, 1, 1, p.now(), p.now()));
    for (;;) {
      (void)p.blocking_match(from_peer);
      p.send(make_msg(p.rank(), 1 - p.rank(), 1, p.now(), p.now()));
    }
  });
  try {
    e.run();
    FAIL() << "expected BudgetExceededError";
  } catch (const BudgetExceededError& b) {
    EXPECT_EQ(b.kind(), BudgetExceededError::Kind::kHostWallClock);
  }
}

TEST(Engine, AbortUnwindsBlockedFibersRunningDestructors) {
  static std::atomic<int> destroyed{0};
  struct Sentinel {
    ~Sentinel() { ++destroyed; }
  };
  destroyed = 0;
  EngineConfig cfg;
  cfg.num_processes = 3;
  Engine e(cfg);
  e.set_body([](Process& p) {
    Sentinel s;
    if (p.rank() == 0) {
      // Block until the LAST rank pokes us, so every fiber has started
      // (and suspended) by the time we blow up.
      p.blocking_match(match_tag(2, 1));
      throw std::runtime_error("boom");
    }
    if (p.rank() == 2) {
      p.send(make_msg(2, 0, 1, 0, vtime_from_us(1)));
    }
    p.blocking_match(match_tag(0, 99));  // blocks forever
  });
  EXPECT_THROW(e.run(), std::runtime_error);
  // All three fibers' stack objects were destroyed (0 threw; 1, 2 were
  // unwound via FiberAborted).
  EXPECT_EQ(destroyed.load(), 3);
}

TEST(Engine, PerProcessRngStreamsAreIndependentAndDeterministic) {
  auto collect = [] {
    std::vector<std::uint64_t> vals;
    EngineConfig cfg;
    cfg.num_processes = 4;
    cfg.seed = 99;
    Engine e(cfg);
    std::mutex m;
    e.set_body([&](Process& p) {
      std::lock_guard<std::mutex> lock(m);
      vals.push_back(p.rng().next_u64());
    });
    e.run();
    std::sort(vals.begin(), vals.end());
    return vals;
  };
  auto a = collect();
  auto b = collect();
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::set<std::uint64_t>(a.begin(), a.end()).size(), a.size());
}

// ---------------------------------------------------------------------------
// Determinism: sequential vs threaded, and across runs
// ---------------------------------------------------------------------------

/// A little token-ring workload with data-dependent forwarding times.
void ring_body(Process& p) {
  const int n = p.world_size();
  const int next = (p.rank() + 1) % n;
  const int prev = (p.rank() + n - 1) % n;
  VTime hold = vtime_from_us(1 + p.rank() % 3);
  for (int round = 0; round < 5; ++round) {
    if (p.rank() == 0 && round == 0) {
      Message m;
      m.src = 0;
      m.dst = next;
      m.tag = 1;
      m.sent_at = p.now();
      m.arrival = p.now() + vtime_from_us(7);
      p.send(std::move(m));
    }
    MatchSpec spec;
    spec.src = prev;
    spec.tag = 1;
    Message tok = p.blocking_match(spec);
    p.lift_clock(tok.arrival);
    p.advance(hold);
    Message fwd;
    fwd.src = p.rank();
    fwd.dst = next;
    fwd.tag = 1;
    fwd.sent_at = p.now();
    fwd.arrival = p.now() + vtime_from_us(7);
    p.send(std::move(fwd));
  }
  // Rank 0's injected token means its successor ends with one unconsumed
  // message in its inbox — legal, like an unmatched MPI send at exit.
}

std::vector<VTime> run_ring(int procs, int workers, bool threads) {
  EngineConfig cfg;
  cfg.num_processes = procs;
  cfg.host_workers = workers;
  cfg.use_threads = threads;
  Engine e(cfg);
  e.set_body(ring_body);
  return e.run().per_rank_completion;
}

TEST(Engine, RepeatedRunsAreBitIdentical) {
  EXPECT_EQ(run_ring(6, 1, false), run_ring(6, 1, false));
}

class ThreadedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedEquivalence, MatchesSequentialScheduler) {
  const int workers = GetParam();
  auto seq = run_ring(8, 1, false);
  auto par = run_ring(8, workers, true);
  EXPECT_EQ(seq, par) << "workers = " << workers;
}

INSTANTIATE_TEST_SUITE_P(Workers, ThreadedEquivalence,
                         ::testing::Values(2, 3, 4, 8));

TEST(Engine, SingleWorkerTakesSequentialFastPath) {
  // threads == 1 must not pay for the pool, mailboxes, or rounds: it runs
  // the sequential scheduler verbatim, so parallel stats stay zero.
  EngineConfig cfg;
  cfg.num_processes = 6;
  cfg.host_workers = 1;
  cfg.use_threads = true;
  Engine e(cfg);
  e.set_body(ring_body);
  auto par = e.run().per_rank_completion;
  EXPECT_EQ(par, run_ring(6, 1, false));
  EXPECT_EQ(e.parallel_stats().rounds, 0u);
  EXPECT_EQ(e.parallel_stats().cross_messages(), 0u);
}

TEST(Engine, ThreadedRunPopulatesParallelStats) {
  EngineConfig cfg;
  cfg.num_processes = 8;
  cfg.host_workers = 4;
  cfg.use_threads = true;
  Engine e(cfg);
  e.set_body(ring_body);
  e.run();
  const ParallelStats& ps = e.parallel_stats();
  EXPECT_GT(ps.rounds, 0u);
  // The ring crosses every block boundary, so some traffic must be
  // cross-partition; the rest stays on-worker.
  EXPECT_GT(ps.cross_messages(), 0u);
  EXPECT_GT(ps.intra_messages, 0u);
  ASSERT_EQ(ps.worker_busy_vtime.size(), 4u);
  ASSERT_EQ(ps.worker_slices.size(), 4u);
  std::uint64_t slices = 0;
  for (auto s : ps.worker_slices) slices += s;
  EXPECT_GT(slices, 0u);
  EXPECT_FALSE(ps.window_advance_hist.empty());
  std::uint64_t hist_total = 0;
  for (auto c : ps.window_advance_hist) hist_total += c;
  EXPECT_EQ(hist_total, ps.rounds);
}

TEST(Engine, ThreadedDeadlockReportsPerWorkerDetail) {
  EngineConfig cfg;
  cfg.num_processes = 4;
  cfg.host_workers = 2;
  cfg.use_threads = true;
  Engine e(cfg);
  e.set_body([](Process& p) {
    // Everyone waits on a tag nobody sends.
    p.blocking_match(match_tag((p.rank() + 1) % p.world_size(), 7));
  });
  try {
    e.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& d) {
    ASSERT_EQ(d.blocked().size(), 4u);
    for (const auto& b : d.blocked()) {
      // Block partition of 4 ranks over 2 workers: ranks 0,1 -> worker 0.
      EXPECT_EQ(b.home_worker, b.rank / 2);
    }
    EXPECT_NE(std::string(d.what()).find("worker"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// SPSC mailbox ring
// ---------------------------------------------------------------------------

TEST(SpscRing, PushPopFifoAndCapacity) {
  SpscRing<int> ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(std::move(overflow)));
  EXPECT_EQ(overflow, 99);  // full push leaves the value untouched
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(&out));
    EXPECT_EQ(out, i);
  }
  int out;
  EXPECT_FALSE(ring.try_pop(&out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_pop = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t{i}));
    if (i % 3 == 2) {  // drain in bursts so head/tail wrap at different times
      std::uint64_t out;
      while (ring.try_pop(&out)) EXPECT_EQ(out, next_pop++);
    }
  }
  std::uint64_t out;
  while (ring.try_pop(&out)) EXPECT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, 1000u);
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesOrder) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 100000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (ring.try_push(std::uint64_t{i})) ++i;
    }
  });
  std::uint64_t expect = 0;
  while (expect < kCount) {
    std::uint64_t out;
    if (ring.try_pop(&out)) {
      ASSERT_EQ(out, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

TEST(WorkerPool, RunsEveryWorkerOncePerRound) {
  constexpr int kWorkers = 4;
  std::atomic<int> counts[kWorkers] = {};
  WorkerPool pool(kWorkers, [&](int w) { ++counts[w]; });
  for (int round = 1; round <= 50; ++round) {
    pool.run_round();
    for (int w = 0; w < kWorkers; ++w) EXPECT_EQ(counts[w].load(), round);
  }
}

TEST(WorkerPool, RoundsAreSequentiallyConsistentWithScheduler) {
  // Data written by the scheduler between rounds must be visible to the
  // workers in the next round, and worker writes visible back — the
  // barrier is the only fence.
  int shared = 0;  // deliberately non-atomic
  std::atomic<bool> mismatch{false};
  WorkerPool pool(2, [&](int w) {
    // Only worker 0 touches `shared` (workers within one round are
    // unordered with respect to each other; only the barrier orders them
    // against the scheduler).
    if (w == 0) {
      if (shared % 2 != 0) mismatch = true;
      ++shared;
    }
  });
  for (int round = 0; round < 100; ++round) {
    pool.run_round();
    if (shared % 2 != 1) mismatch = true;  // worker 0's write is visible
    ++shared;  // scheduler-side write: keeps `shared` even at release
  }
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(shared, 200);
}

TEST(WorkerPool, DestructorJoinsIdlePool) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(3, [&](int) { ++ran; });
    pool.run_round();
  }  // destructor joins parked workers without a further round
  EXPECT_EQ(ran.load(), 3);
}

// Wait-until-blocked semantics: a process that never blocks finishes in
// one slice and others still make progress.
TEST(Engine, NonBlockingProcessesFinishIndependently) {
  EngineConfig cfg;
  cfg.num_processes = 4;
  Engine e(cfg);
  e.set_body([](Process& p) { p.advance(vtime_from_us(p.rank() + 1)); });
  auto r = e.run();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r.per_rank_completion[static_cast<std::size_t>(i)],
              vtime_from_us(i + 1));
  }
}

// ---------------------------------------------------------------------------
// Host-trace replay
// ---------------------------------------------------------------------------

Slice slice(int lp, double dur, std::vector<Slice::Dep> deps = {}) {
  Slice s;
  s.lp = lp;
  s.duration_sec = dur;
  s.deps = std::move(deps);
  return s;
}

TEST(Replay, IndependentSlicesParallelizePerfectly) {
  HostModel m;
  m.per_slice_overhead_sec = 0.0;
  std::vector<Slice> trace;
  for (int lp = 0; lp < 4; ++lp) trace.push_back(slice(lp, 1.0));
  EXPECT_DOUBLE_EQ(replay_host_trace(trace, 4, 1, m), 4.0);
  EXPECT_DOUBLE_EQ(replay_host_trace(trace, 4, 4, m), 1.0);
  EXPECT_DOUBLE_EQ(replay_host_trace(trace, 4, 2, m), 2.0);
}

TEST(Replay, DependencyChainSerializes) {
  HostModel m;
  m.per_slice_overhead_sec = 0.0;
  m.cross_worker_msg_sec = 0.0;
  std::vector<Slice> trace;
  trace.push_back(slice(0, 1.0));
  trace.push_back(slice(1, 1.0, {{0, 1.0, 0}}));  // sent at end of slice 0
  trace.push_back(slice(2, 1.0, {{1, 1.0, 1}}));
  EXPECT_DOUBLE_EQ(replay_host_trace(trace, 3, 3, m), 3.0);
}

TEST(Replay, CrossWorkerMessagesAddOverhead) {
  HostModel m;
  m.per_slice_overhead_sec = 0.0;
  m.cross_worker_msg_sec = 0.5;
  std::vector<Slice> trace;
  trace.push_back(slice(0, 1.0));
  trace.push_back(slice(1, 1.0, {{0, 1.0, 0}}));
  // Same worker: no cross cost.
  EXPECT_DOUBLE_EQ(replay_host_trace(trace, 2, 1, m), 2.0);
  // Different workers: +0.5 delivery.
  EXPECT_DOUBLE_EQ(replay_host_trace(trace, 2, 2, m), 2.5);
}

TEST(Replay, MidSliceSendOffsetsRespected) {
  HostModel m;
  m.per_slice_overhead_sec = 0.0;
  m.cross_worker_msg_sec = 0.0;
  std::vector<Slice> trace;
  trace.push_back(slice(0, 1.0));
  // Message produced 0.5s into slice 0: the consumer overlaps with the
  // rest of the producing slice instead of waiting for its end.
  trace.push_back(slice(1, 1.0, {{0, 0.5, 0}}));
  EXPECT_DOUBLE_EQ(replay_host_trace(trace, 2, 2, m), 1.5);
}

TEST(Replay, DurationScaleStretchesWorkNotMessaging) {
  HostModel m;
  m.per_slice_overhead_sec = 0.0;
  m.cross_worker_msg_sec = 0.25;
  m.duration_scale = 10.0;
  std::vector<Slice> trace;
  trace.push_back(slice(0, 1.0));
  trace.push_back(slice(1, 1.0, {{0, 1.0, 0}}));
  // (1.0 * 10) + 0.25 + (1.0 * 10)
  EXPECT_DOUBLE_EQ(replay_host_trace(trace, 2, 2, m), 20.25);
}

TEST(Replay, PerSliceOverheadAccumulates) {
  HostModel m;
  m.per_slice_overhead_sec = 0.1;
  std::vector<Slice> trace;
  for (int i = 0; i < 5; ++i) trace.push_back(slice(0, 1.0));
  EXPECT_NEAR(replay_host_trace(trace, 1, 1, m), 5.5, 1e-12);
}

TEST(Engine, HostTraceRecordsSlicesAndDeps) {
  EngineConfig cfg;
  cfg.num_processes = 2;
  cfg.record_host_trace = true;
  Engine e(cfg);
  e.set_body([](Process& p) {
    if (p.rank() == 0) {
      p.send(make_msg(0, 1, 1, 0, vtime_from_us(5)));
    } else {
      Message m = p.blocking_match(match_tag(0, 1));
      p.lift_clock(m.arrival);
    }
  });
  e.run();
  const auto& trace = e.host_trace();
  ASSERT_GE(trace.size(), 2u);
  bool found_dep = false;
  for (const auto& s : trace) {
    for (const auto& d : s.deps) {
      found_dep = true;
      EXPECT_EQ(d.producer_lp, 0);
    }
  }
  EXPECT_TRUE(found_dep);
}

}  // namespace
}  // namespace stgsim::simk
