// Tests for the fault-injection layer and the run-outcome taxonomy: fault
// plan parsing/validation, degraded arrivals, straggler stretching, the
// deadlock detector, run budgets, and cross-scheduler determinism of
// faulted runs.
#include <gtest/gtest.h>

#include "apps/tomcatv.hpp"
#include "fault/fault.hpp"
#include "harness/runner.hpp"
#include "ir/builder.hpp"
#include "net/network.hpp"

namespace stgsim {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

// ---------------------------------------------------------------------------
// FaultPlan: parsing, validation, factor math
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParseRoundTripsThroughToString) {
  const std::string spec =
      "link:src=0,dst=1,latency=4,bandwidth=0.25,until=0.5;"
      "straggler:rank=2,factor=2.5,from=0.1;"
      "brownout:rank=1,injection=0.1;"
      "drop:prob=0.01,timeout=0.0005,backoff=2,retries=8";
  const fault::FaultPlan plan = fault::parse_fault_plan(spec);
  ASSERT_EQ(plan.links.size(), 1u);
  EXPECT_EQ(plan.links[0].src, 0);
  EXPECT_EQ(plan.links[0].dst, 1);
  EXPECT_DOUBLE_EQ(plan.links[0].latency_factor, 4.0);
  EXPECT_DOUBLE_EQ(plan.links[0].bandwidth_factor, 0.25);
  EXPECT_EQ(plan.links[0].window.until, vtime_from_ms(500));
  ASSERT_EQ(plan.stragglers.size(), 1u);
  EXPECT_EQ(plan.stragglers[0].window.from, vtime_from_ms(100));
  ASSERT_EQ(plan.brownouts.size(), 1u);
  EXPECT_TRUE(plan.eager_drop.enabled());

  const fault::FaultPlan again = fault::parse_fault_plan(plan.to_string());
  EXPECT_EQ(plan.to_string(), again.to_string());
}

TEST(FaultPlan, ParseRejectsMalformedAndOutOfRangeSpecs) {
  EXPECT_THROW(fault::parse_fault_plan("nonsense"), std::runtime_error);
  EXPECT_THROW(fault::parse_fault_plan("link:latency"), std::runtime_error);
  EXPECT_THROW(fault::parse_fault_plan("link:latency=abc"),
               std::runtime_error);
  EXPECT_THROW(fault::parse_fault_plan("link:bogus_key=1"),
               std::runtime_error);
  // Factors that would break the wildcard-safety bound are rejected.
  EXPECT_THROW(fault::parse_fault_plan("link:latency=0.5"), CheckError);
  EXPECT_THROW(fault::parse_fault_plan("link:bandwidth=1.5"), CheckError);
  EXPECT_THROW(fault::parse_fault_plan("brownout:injection=0"), CheckError);
  EXPECT_THROW(fault::parse_fault_plan("straggler:factor=0.9"), CheckError);
  EXPECT_THROW(fault::parse_fault_plan("drop:prob=1"), CheckError);
}

TEST(FaultPlan, FactorsMultiplyAcrossOverlappingWindows) {
  fault::FaultPlan plan;
  plan.links.push_back({0, 1, {}, 2.0, 0.5});
  plan.links.push_back(
      {fault::kAnyRank, 1, {0, vtime_from_us(10)}, 3.0, 1.0});
  EXPECT_DOUBLE_EQ(plan.latency_factor(0, 1, 0), 6.0);
  EXPECT_DOUBLE_EQ(plan.latency_factor(0, 1, vtime_from_us(10)), 2.0);
  EXPECT_DOUBLE_EQ(plan.latency_factor(2, 1, 0), 3.0);  // kAnyRank src
  EXPECT_DOUBLE_EQ(plan.latency_factor(0, 2, 0), 1.0);  // other link
  EXPECT_DOUBLE_EQ(plan.bandwidth_factor(0, 1, 0), 0.5);
}

TEST(FaultPlan, StretchComputeIntegratesAcrossWindowBoundaries) {
  fault::FaultPlan plan;
  plan.stragglers.push_back(
      {0, {vtime_from_us(10), vtime_from_us(20)}, 2.0});

  // Entirely before the window: unchanged.
  EXPECT_EQ(plan.stretch_compute(0, 0, vtime_from_us(5)), vtime_from_us(5));
  // Entirely inside: doubled.
  EXPECT_EQ(plan.stretch_compute(0, vtime_from_us(10), vtime_from_us(4)),
            vtime_from_us(8));
  // Straddling the leading edge: 5us at 1x, then 5us of work at 2x = 15us.
  EXPECT_EQ(plan.stretch_compute(0, vtime_from_us(5), vtime_from_us(10)),
            vtime_from_us(15));
  // Straddling the trailing edge: 2us of work at 2x reaches the boundary
  // (4us elapsed), remaining 3us at 1x = 7us total.
  EXPECT_EQ(plan.stretch_compute(0, vtime_from_us(16), vtime_from_us(5)),
            vtime_from_us(7));
  // Other ranks unaffected.
  EXPECT_EQ(plan.stretch_compute(1, vtime_from_us(10), vtime_from_us(4)),
            vtime_from_us(4));
}

TEST(FaultPlan, RetransmissionDelayBacksOffExponentially) {
  fault::FaultPlan plan;
  plan.eager_drop.drop_prob = 0.5;
  plan.eager_drop.retransmit_timeout = vtime_from_us(100);
  plan.eager_drop.backoff_factor = 2.0;
  EXPECT_EQ(plan.retransmission_delay(0), 0);
  EXPECT_EQ(plan.retransmission_delay(1), vtime_from_us(100));
  EXPECT_EQ(plan.retransmission_delay(3), vtime_from_us(700));
}

TEST(FaultPlan, DrawEagerDropsIsBoundedAndSeeded) {
  fault::FaultPlan plan;
  plan.eager_drop.drop_prob = 0.9;
  plan.eager_drop.max_retries = 3;
  auto draw_all = [&] {
    Rng rng(42);
    std::vector<int> v;
    for (int i = 0; i < 100; ++i) v.push_back(plan.draw_eager_drops(rng));
    return v;
  };
  const auto a = draw_all();
  EXPECT_EQ(a, draw_all());  // same stream, same drops
  for (int d : a) {
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 3);  // a transfer can never be dropped forever
  }
}

// ---------------------------------------------------------------------------
// Network integration
// ---------------------------------------------------------------------------

TEST(FaultNetwork, LinkDegradationSlowsMatchingTrafficOnly) {
  net::NetworkParams p;
  p.latency = vtime_from_us(10);
  p.bytes_per_sec = 1e8;
  net::Network n(p, 3);
  fault::FaultPlan plan;
  plan.links.push_back({0, 1, {}, 3.0, 0.5});
  n.set_fault_plan(plan);

  Rng rng(1);
  // 1 MB at 100 MB/s is 10 ms; degraded link: 30us latency + 20ms.
  EXPECT_EQ(n.arrival(0, 1, 0, 1000000, rng),
            vtime_from_us(30) + vtime_from_ms(20));
  // Reverse direction and other pairs keep the healthy parameters.
  EXPECT_EQ(n.arrival(1, 0, 0, 1000000, rng),
            vtime_from_us(10) + vtime_from_ms(10));
  EXPECT_EQ(n.arrival(0, 2, 0, 1000000, rng),
            vtime_from_us(10) + vtime_from_ms(10));
}

TEST(FaultNetwork, BrownoutThrottlesEverythingTheRankSends) {
  net::NetworkParams p;
  p.latency = 0;
  p.bytes_per_sec = 1e6;
  net::Network n(p, 2);
  fault::FaultPlan plan;
  plan.brownouts.push_back({0, {}, 0.25});
  n.set_fault_plan(plan);
  Rng rng(1);
  EXPECT_EQ(n.arrival(0, 1, 0, 1000, rng), vtime_from_ms(4));
  EXPECT_EQ(n.arrival(1, 0, 0, 1000, rng), vtime_from_ms(1));
}

TEST(FaultNetwork, EagerDropDelaysEagerButNotControlTraffic) {
  net::NetworkParams p;
  p.latency = vtime_from_us(10);
  net::Network n(p, 2);
  fault::FaultPlan plan;
  plan.eager_drop.drop_prob = 0.99;  // with seed 7 some draw certainly hits
  plan.eager_drop.retransmit_timeout = vtime_from_us(100);
  n.set_fault_plan(plan);

  Rng rng(7);
  VTime worst_eager = 0;
  for (int i = 0; i < 20; ++i) {
    worst_eager = std::max(worst_eager, n.arrival(0, 1, 0, 8, rng));
  }
  EXPECT_GT(worst_eager, n.wire_time(8));  // retransmissions happened
  // Control and rendezvous-data transfers are modeled as reliable: no rng
  // draws, exact base flight time.
  EXPECT_EQ(n.arrival(0, 1, 0, 8, rng, net::TransferKind::kControl),
            n.wire_time(8));
  EXPECT_EQ(n.arrival(0, 1, 0, 8, rng, net::TransferKind::kRendezvousData),
            n.wire_time(8));
}

// ---------------------------------------------------------------------------
// Harness: stragglers, deadlock, budgets, determinism
// ---------------------------------------------------------------------------

ir::Program delay_loop_program(std::int64_t iters, double sec_per_iter) {
  ir::ProgramBuilder b("delay_loop");
  b.for_loop("i", I(0), I(iters - 1),
             [&](Expr) { b.delay(Expr::real(sec_per_iter)); });
  return b.take();
}

TEST(FaultHarness, StragglerStretchesDelayedComputation) {
  const ir::Program prog = delay_loop_program(10, 1e-3);
  harness::RunConfig cfg;
  cfg.nprocs = 2;
  const auto healthy = harness::run_program(prog, cfg);
  ASSERT_TRUE(healthy.ok());

  cfg.faults.stragglers.push_back({1, {}, 3.0});
  const auto faulted = harness::run_program(prog, cfg);
  ASSERT_TRUE(faulted.ok());
  // Rank 0 is untouched; rank 1 runs exactly 3x slower.
  EXPECT_EQ(faulted.per_rank[0], healthy.per_rank[0]);
  EXPECT_EQ(faulted.per_rank[1], 3 * healthy.per_rank[1]);
}

ir::Program mismatched_recv_program() {
  // Rank 0 waits for rank 1 and vice versa, but nobody ever sends:
  // a classic crossed-communication bug.
  ir::ProgramBuilder b("mismatched");
  Expr rank = b.get_rank();
  b.decl_array("A", {I(8)});
  b.if_then_else(
      sym::eq(rank, I(0)), [&] { b.recv("A", I(1), I(8), I(0), 5); },
      [&] { b.recv("A", I(0), I(8), I(0), 5); });
  return b.take();
}

TEST(FaultHarness, MismatchedCommunicationReportsDeadlockWithBlockedRanks) {
  harness::RunConfig cfg;
  cfg.nprocs = 2;
  const auto out = harness::run_program(mismatched_recv_program(), cfg);
  EXPECT_EQ(out.status, harness::RunStatus::kDeadlock);
  EXPECT_NE(out.diagnostic.find("deadlock"), std::string::npos);
  EXPECT_NE(out.diagnostic.find("rank 0"), std::string::npos);
  EXPECT_NE(out.diagnostic.find("rank 1"), std::string::npos);
  EXPECT_NE(out.diagnostic.find("recv"), std::string::npos);
  EXPECT_NE(out.diagnostic.find("tag=5"), std::string::npos);
}

TEST(FaultHarness, DeadlockUnderThreadedSchedulerToo) {
  harness::RunConfig cfg;
  cfg.nprocs = 2;
  cfg.threads = 2;
  const auto out = harness::run_program(mismatched_recv_program(), cfg);
  EXPECT_EQ(out.status, harness::RunStatus::kDeadlock);
}

TEST(FaultHarness, UnboundedLoopHitsVirtualTimeBudget) {
  // A runaway loop: a billion virtual seconds of delays. The budget stops
  // it after ~1 virtual millisecond.
  const ir::Program prog = delay_loop_program(1000000000, 1.0);
  harness::RunConfig cfg;
  cfg.nprocs = 2;
  cfg.max_virtual_time = vtime_from_ms(1);
  const auto out = harness::run_program(prog, cfg);
  EXPECT_EQ(out.status, harness::RunStatus::kBudgetExceeded);
  EXPECT_NE(out.diagnostic.find("virtual"), std::string::npos);
}

TEST(FaultHarness, MessageBudgetStopsChatterstorms) {
  ir::ProgramBuilder b("chatter");
  b.for_loop("i", I(0), I(100000), [&](Expr) { b.barrier(); });
  harness::RunConfig cfg;
  cfg.nprocs = 4;
  cfg.max_messages = 500;
  const auto out = harness::run_program(b.take(), cfg);
  EXPECT_EQ(out.status, harness::RunStatus::kBudgetExceeded);
  EXPECT_NE(out.diagnostic.find("message"), std::string::npos);
}

TEST(FaultHarness, HostWallClockWatchdogFires) {
  // 200M tiny delays would take minutes of host time to interpret; the
  // watchdog halts the run after ~0.2s of wall clock.
  const ir::Program prog = delay_loop_program(200000000, 1e-9);
  harness::RunConfig cfg;
  cfg.nprocs = 1;
  cfg.max_host_seconds = 0.2;
  const auto out = harness::run_program(prog, cfg);
  EXPECT_EQ(out.status, harness::RunStatus::kBudgetExceeded);
  EXPECT_NE(out.diagnostic.find("wall-clock"), std::string::npos);
}

TEST(FaultHarness, TargetProgramBugIsReportedAsInternalError) {
  // Receive buffer smaller than the message: the model check trips inside
  // the target program; the simulator reports instead of crashing.
  ir::ProgramBuilder b("overrun");
  Expr rank = b.get_rank();
  b.decl_array("A", {I(16)});
  b.if_then_else(
      sym::eq(rank, I(0)), [&] { b.send("A", I(1), I(16), I(0), 0); },
      [&] { b.recv("A", I(0), I(8), I(0), 0); });
  harness::RunConfig cfg;
  cfg.nprocs = 2;
  const auto out = harness::run_program(b.take(), cfg);
  EXPECT_EQ(out.status, harness::RunStatus::kInternalError);
  EXPECT_NE(out.diagnostic.find("buffer too small"), std::string::npos);
}

/// The determinism acceptance criterion: same seed + same plan ⇒ identical
/// RunOutcome under the sequential and threaded conservative schedulers.
TEST(FaultHarness, FaultedRunsAreBitIdenticalAcrossSchedulers) {
  apps::TomcatvConfig app;
  app.n = 64;
  app.iterations = 2;
  const ir::Program prog = apps::make_tomcatv(app);

  harness::RunConfig cfg;
  cfg.nprocs = 4;
  cfg.faults = fault::parse_fault_plan(
      "link:src=0,dst=1,latency=4,bandwidth=0.25;"
      "straggler:rank=2,factor=2.5;brownout:rank=3,injection=0.5;"
      "drop:prob=0.05,timeout=0.0002");

  const auto seq = harness::run_program(prog, cfg);
  cfg.threads = 2;
  const auto par = harness::run_program(prog, cfg);

  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq.predicted_time, par.predicted_time);
  EXPECT_EQ(seq.per_rank, par.per_rank);
  EXPECT_EQ(seq.messages, par.messages);

  // And faults actually changed the prediction vs the healthy machine.
  harness::RunConfig healthy_cfg;
  healthy_cfg.nprocs = 4;
  const auto healthy = harness::run_program(prog, healthy_cfg);
  ASSERT_TRUE(healthy.ok());
  EXPECT_GT(seq.predicted_time, healthy.predicted_time);
}

}  // namespace
}  // namespace stgsim
