// Tests for the experiment harness: the three execution modes, memory-cap
// reporting, calibration (measured and compiler-estimated), and the
// abstract communication fidelity.
#include <gtest/gtest.h>

#include "apps/tomcatv.hpp"
#include "core/compiler.hpp"
#include "harness/runner.hpp"
#include "ir/builder.hpp"

namespace stgsim::harness {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::Program small_tomcatv() {
  apps::TomcatvConfig cfg;
  cfg.n = 128;
  cfg.iterations = 2;
  return apps::make_tomcatv(cfg);
}

TEST(Harness, ModeNamesAreStable) {
  EXPECT_STREQ(mode_name(Mode::kMeasured), "measured");
  EXPECT_STREQ(mode_name(Mode::kDirectExec), "MPI-SIM-DE");
  EXPECT_STREQ(mode_name(Mode::kAnalytical), "MPI-SIM-AM");
}

TEST(Harness, MeasuredDiffersFromDEButStaysClose) {
  ir::Program prog = small_tomcatv();
  RunConfig cfg;
  cfg.nprocs = 4;
  cfg.mode = Mode::kMeasured;
  const auto measured = run_program(prog, cfg);
  cfg.mode = Mode::kDirectExec;
  const auto de = run_program(prog, cfg);
  EXPECT_NE(measured.predicted_time, de.predicted_time);  // noise/contention
  EXPECT_NEAR(de.predicted_seconds(), measured.predicted_seconds(),
              0.15 * measured.predicted_seconds());
}

TEST(Harness, MeasuredRunsAreSeedDeterministic) {
  ir::Program prog = small_tomcatv();
  RunConfig cfg;
  cfg.nprocs = 4;
  cfg.mode = Mode::kMeasured;
  cfg.seed = 7;
  const auto a = run_program(prog, cfg);
  const auto b = run_program(prog, cfg);
  EXPECT_EQ(a.predicted_time, b.predicted_time);
  cfg.seed = 8;
  const auto c = run_program(prog, cfg);
  EXPECT_NE(a.predicted_time, c.predicted_time);
}

TEST(Harness, MemoryCapReportsInsteadOfThrowing) {
  ir::Program prog = small_tomcatv();
  RunConfig cfg;
  cfg.nprocs = 4;
  cfg.memory_cap_bytes = 1024;
  const auto out = run_program(prog, cfg);
  EXPECT_TRUE(out.out_of_memory());
  EXPECT_EQ(out.status, RunStatus::kOutOfMemory);
  EXPECT_FALSE(out.diagnostic.empty());
  EXPECT_EQ(out.predicted_time, 0);
}

TEST(Harness, CalibrateFillsRequiredParamsForUnexecutedTasks) {
  // A branch never taken at the calibration configuration leaves its
  // kernel unmeasured; the simplified program still reads its w_i.
  ir::ProgramBuilder b("partial");
  b.get_rank("myid");
  Expr P = b.get_size("P");
  b.decl_array("A", {I(64)});
  b.if_then(sym::gt(P, I(1000)), [&] {  // false at any test size
    ir::KernelSpec k;
    k.task = "never";
    k.iters = I(10);
    k.writes = {"A"};
    b.compute(std::move(k));
  });
  b.barrier();
  ir::Program prog = b.take();
  core::CompileResult compiled = core::compile(prog);
  ASSERT_TRUE(compiled.simplified.params.contains("w_never"));

  const auto params = calibrate(compiled.timer_program, 4, ibm_sp_machine(),
                                compiled.simplified.params);
  ASSERT_TRUE(params.contains("w_never"));
  EXPECT_DOUBLE_EQ(params.at("w_never"), 0.0);

  // And the simplified program runs with them.
  RunConfig cfg;
  cfg.nprocs = 4;
  cfg.mode = Mode::kAnalytical;
  cfg.params = params;
  const auto out = run_program(compiled.simplified.program, cfg);
  EXPECT_TRUE(out.ok());
}

TEST(Harness, EstimatedParamsTrackMeasuredOnes) {
  ir::Program prog = small_tomcatv();
  core::CompileResult compiled = core::compile(prog);
  const auto machine = ibm_sp_machine();
  const auto measured = calibrate(compiled.timer_program, 4, machine,
                                  compiled.simplified.params);
  const auto estimated =
      estimate_params(prog, 4, machine, compiled.simplified.params);
  ASSERT_EQ(measured.size(), estimated.size());
  for (const auto& [name, w] : measured) {
    if (w == 0.0) continue;
    // Same machine model minus the emulation's noise: within a few %.
    EXPECT_NEAR(estimated.at(name), w, 0.05 * w) << name;
  }
}

TEST(Harness, AbstractCommPreservesValuesAndReducesMessages) {
  // SP-like pattern: rendezvous-size messages plus collectives.
  ir::ProgramBuilder b("abs");
  Expr myid = b.get_rank("myid");
  Expr P = b.get_size("P");
  b.decl_real("acc", Expr::real(1.0));
  b.decl_array("A", {I(8192)});  // 64 KB: rendezvous territory
  b.if_then(sym::lt(myid, P - 1),
            [&] { b.send("A", myid + 1, I(8192), I(0), 0); });
  b.if_then(sym::gt(myid, I(0)),
            [&] { b.recv("A", myid - 1, I(8192), I(0), 0); });
  b.allreduce_sum("acc");
  b.bcast("A", I(0), I(128), I(0));
  ir::Program prog = b.take();

  RunConfig cfg;
  cfg.nprocs = 8;
  cfg.mode = Mode::kDirectExec;
  const auto detailed = run_program(prog, cfg);
  cfg.abstract_comm = true;
  const auto abstract_run = run_program(prog, cfg);

  EXPECT_LT(abstract_run.messages, detailed.messages);
  // Predictions in the same ballpark (both dominated by the transfers).
  EXPECT_NEAR(abstract_run.predicted_seconds(), detailed.predicted_seconds(),
              0.5 * detailed.predicted_seconds());
}

TEST(Harness, AbstractAllreduceStillSumsCorrectly) {
  smpi::World::Options wopts;
  wopts.comm_fidelity = smpi::World::Options::CommFidelity::kAbstract;
  smpi::World world(wopts, 7);
  simk::EngineConfig ec;
  ec.num_processes = 7;
  simk::Engine engine(ec);
  engine.set_body([&](simk::Process& p) {
    smpi::Comm comm(world, p);
    const double total = comm.allreduce_sum(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(total, 21.0);
    double mx = static_cast<double>(comm.rank() % 3);
    comm.allreduce_max(&mx, 1);
    EXPECT_DOUBLE_EQ(mx, 2.0);
    comm.barrier();
  });
  engine.run();
}

TEST(Harness, AbstractBarrierStillSynchronizes) {
  smpi::World::Options wopts;
  wopts.comm_fidelity = smpi::World::Options::CommFidelity::kAbstract;
  smpi::World world(wopts, 5);
  simk::EngineConfig ec;
  ec.num_processes = 5;
  simk::Engine engine(ec);
  engine.set_body([&](simk::Process& p) {
    smpi::Comm comm(world, p);
    comm.delay(vtime_from_us(100 * (comm.rank() + 1)));
    comm.barrier();
    EXPECT_GE(comm.now(), vtime_from_us(500));
  });
  engine.run();
}

TEST(Harness, AbstractRendezvousSizedSendDoesNotBlock) {
  smpi::World::Options wopts;
  wopts.comm_fidelity = smpi::World::Options::CommFidelity::kAbstract;
  smpi::World world(wopts, 2);
  simk::EngineConfig ec;
  ec.num_processes = 2;
  simk::Engine engine(ec);
  const std::size_t big = wopts.net.eager_threshold * 4;
  engine.set_body([&](simk::Process& p) {
    smpi::Comm comm(world, p);
    std::vector<std::uint8_t> buf(big, 7);
    if (comm.rank() == 0) {
      comm.send(1, 0, buf.data(), big);
      // Abstract: buffered semantics even above the eager threshold.
      EXPECT_LT(comm.now(), vtime_from_ms(1));
    } else {
      comm.delay(vtime_from_ms(5));  // receiver is late; sender unaffected
      comm.recv(0, 0, buf.data(), big);
      EXPECT_EQ(buf[big / 2], 7);
    }
  });
  engine.run();
}

TEST(Harness, EmulatedHostSecondsRequiresATrace) {
  RunOutcome empty;
  EXPECT_THROW(emulated_host_seconds(empty, 4), CheckError);
}

TEST(Harness, ThreadedMeasuredModeIsRejected) {
  ir::Program prog = small_tomcatv();
  RunConfig cfg;
  cfg.nprocs = 4;
  cfg.threads = 2;
  cfg.mode = Mode::kMeasured;
  EXPECT_THROW(run_program(prog, cfg), CheckError);
}

TEST(Harness, ThreadedDirectExecWorks) {
  ir::Program prog = small_tomcatv();
  RunConfig cfg;
  cfg.nprocs = 4;
  cfg.mode = Mode::kDirectExec;
  const auto seq = run_program(prog, cfg);
  cfg.threads = 2;
  const auto par = run_program(prog, cfg);
  EXPECT_EQ(seq.predicted_time, par.predicted_time);
}

}  // namespace
}  // namespace stgsim::harness
