// Unit tests for the IR interpreter: scalar semantics, control flow,
// arrays, kernels (cost model coupling, declared-access enforcement,
// data-dependent branches), timers and profilers.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/interp.hpp"
#include "smpi/smpi.hpp"

namespace stgsim::ir {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

struct RunResult {
  simk::RunResult engine;
  smpi::RankStats stats;
};

RunResult run(const Program& prog, int nprocs = 1,
              const ExecOptions& opts = {},
              smpi::World::Options wopts = {}) {
  smpi::World world(wopts, nprocs);
  simk::EngineConfig ec;
  ec.num_processes = nprocs;
  simk::Engine engine(ec);
  engine.set_body([&](simk::Process& p) {
    smpi::Comm comm(world, p);
    execute(prog, comm, opts);
  });
  auto r = engine.run();
  return {r, world.stats(0)};
}

TEST(Interp, ScalarDeclAssignAndArithmetic) {
  ProgramBuilder b("t");
  b.get_size("P");
  b.get_rank("myid");
  Expr x = b.decl_int("x", I(3));
  b.assign("x", x * 2 + 1);
  Expr y = b.decl_real("y", Expr::real(0.5));
  b.assign("y", y + x);  // x = 7 by now
  KernelSpec probe;
  probe.task = "probe";
  probe.iters = I(1);
  probe.reads = {"x", "y"};
  probe.writes = {"ok"};
  probe.body = [](KernelCtx& ctx) {
    EXPECT_EQ(ctx.scalar("x").as_int(), 7);
    EXPECT_DOUBLE_EQ(ctx.scalar("y").as_real(), 7.5);
    ctx.set_scalar("ok", sym::Value(std::int64_t{1}));
  };
  b.decl_int("ok", I(0));
  b.compute(std::move(probe));
  run(b.take());
}

TEST(Interp, IntegerScalarsStayIntegral) {
  ProgramBuilder b("t");
  b.decl_int("x", I(5));
  b.assign("x", Expr::real(2.0));  // real value into integer scalar
  b.decl_int("ok", I(0));
  KernelSpec probe;
  probe.task = "p";
  probe.iters = I(1);
  probe.reads = {"x"};
  probe.writes = {"ok"};
  probe.body = [](KernelCtx& ctx) {
    EXPECT_TRUE(ctx.scalar("x").is_int());
    ctx.set_scalar("ok", sym::Value(std::int64_t{1}));
  };
  b.compute(std::move(probe));
  run(b.take());
}

TEST(Interp, AssignToUndeclaredScalarFails) {
  ProgramBuilder b("t");
  b.assign("ghost", I(1));
  Program p = b.take();
  EXPECT_THROW(run(p), CheckError);
}

TEST(Interp, ForLoopInclusiveAndEmpty) {
  ProgramBuilder b("t");
  b.decl_int("sum", I(0));
  b.for_loop("i", I(1), I(4), [&](Expr i) {
    b.assign("sum", Expr::var("sum") + i);
  });
  b.for_loop("j", I(5), I(2), [&](Expr j) {  // empty range
    b.assign("sum", Expr::var("sum") + j * 1000);
  });
  b.decl_int("ok", I(0));
  KernelSpec probe;
  probe.task = "p";
  probe.iters = I(1);
  probe.reads = {"sum"};
  probe.writes = {"ok"};
  probe.body = [](KernelCtx& ctx) {
    EXPECT_EQ(ctx.scalar("sum").as_int(), 10);
    ctx.set_scalar("ok", sym::Value(std::int64_t{1}));
  };
  b.compute(std::move(probe));
  run(b.take());
}

TEST(Interp, IfElseTakesCorrectBranch) {
  ProgramBuilder b("t");
  Expr myid = b.get_rank("myid");
  b.decl_int("path", I(0));
  b.if_then_else(sym::eq(myid, I(0)), [&] { b.assign("path", I(1)); },
                 [&] { b.assign("path", I(2)); });
  Program p = b.take();
  // Rank 0 takes then-branch; verified via branch profiler.
  BranchProfiler profiler;
  ExecOptions opts;
  opts.branches = &profiler;
  run(p, 1, opts);
  const auto probs = profiler.probabilities();
  ASSERT_EQ(probs.size(), 1u);
  EXPECT_DOUBLE_EQ(probs.begin()->second, 1.0);
}

TEST(Interp, BranchProfilerCountsFractions) {
  ProgramBuilder b("t");
  b.decl_int("x", I(0));
  b.for_loop("i", I(1), I(10), [&](Expr i) {
    b.if_then(sym::eq(sym::imod(i, I(5)), I(0)),
              [&] { b.assign("x", Expr::var("x") + 1); });
  });
  BranchProfiler profiler;
  ExecOptions opts;
  opts.branches = &profiler;
  run(b.take(), 1, opts);
  const auto probs = profiler.probabilities();
  ASSERT_EQ(probs.size(), 1u);
  EXPECT_DOUBLE_EQ(probs.begin()->second, 0.2);  // i = 5, 10 of 10
}

TEST(Interp, KernelCostUsesIterationCountAndFlops) {
  auto time_for = [](std::int64_t iters, double flops) {
    ProgramBuilder b("t");
    b.decl_array("A", {I(8)});
    KernelSpec k;
    k.task = "k";
    k.iters = I(iters);
    k.flops_per_iter = flops;
    k.writes = {"A"};
    b.compute(std::move(k));
    return run(b.take()).engine.completion;
  };
  const VTime t1 = time_for(1000, 2.0);
  const VTime t2 = time_for(2000, 2.0);
  const VTime t3 = time_for(1000, 4.0);
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1),
              static_cast<double>(t1) * 0.01);
  EXPECT_NEAR(static_cast<double>(t3), 2.0 * static_cast<double>(t1),
              static_cast<double>(t1) * 0.01);
}

TEST(Interp, KernelCostGrowsWithWorkingSet) {
  auto time_for = [](std::int64_t elems) {
    ProgramBuilder b("t");
    b.decl_array("A", {I(elems)});
    KernelSpec k;
    k.task = "k";
    k.iters = I(100000);
    k.flops_per_iter = 1.0;
    k.writes = {"A"};
    b.compute(std::move(k));
    return run(b.take()).engine.completion;
  };
  // Same iteration count; bigger working set -> worse cache factor.
  EXPECT_GT(time_for(4 * 1024 * 1024), time_for(1024));
}

TEST(Interp, DataDependentBranchChargesExtraFlops) {
  auto time_with_fraction = [](double fraction) {
    ProgramBuilder b("t");
    b.decl_array("A", {I(64)});
    KernelSpec k;
    k.task = "k";
    k.iters = I(100000);
    k.flops_per_iter = 10.0;
    k.extra_flops_per_iter = 10.0;
    k.writes = {"A"};
    k.branch_fraction = [fraction](KernelCtx&) { return fraction; };
    b.compute(std::move(k));
    return run(b.take()).engine.completion;
  };
  const auto t0 = static_cast<double>(time_with_fraction(0.0));
  const auto t1 = static_cast<double>(time_with_fraction(1.0));
  EXPECT_NEAR(t1 / t0, 2.0, 0.01);
}

TEST(Interp, NegativeIterationCountIsRejected) {
  ProgramBuilder b("t");
  KernelSpec k;
  k.task = "k";
  k.iters = I(-5);
  b.compute(std::move(k));
  Program p = b.take();
  EXPECT_THROW(run(p), CheckError);
}

TEST(Interp, KernelAccessOutsideDeclaredSetsFails) {
  ProgramBuilder b("t");
  b.decl_array("A", {I(8)});
  b.decl_array("B", {I(8)});
  KernelSpec k;
  k.task = "k";
  k.iters = I(1);
  k.reads = {"A"};
  k.writes = {"A"};
  k.body = [](KernelCtx& ctx) {
    ctx.array("B");  // not declared in reads/writes
  };
  b.compute(std::move(k));
  Program p = b.take();
  EXPECT_THROW(run(p), CheckError);
}

TEST(Interp, ArrayExtentsEvaluateSymbolically) {
  ProgramBuilder b("t");
  Expr n = b.decl_int("n", I(6));
  b.decl_array("A", {n, n + 2});
  b.decl_int("ok", I(0));
  KernelSpec k;
  k.task = "k";
  k.iters = I(1);
  k.reads = {"A"};
  k.writes = {"ok"};
  k.body = [](KernelCtx& ctx) {
    EXPECT_EQ(ctx.array_elems("A"), 48u);
    EXPECT_EQ(ctx.array_extent("A", 0), 6);
    EXPECT_EQ(ctx.array_extent("A", 1), 8);
    ctx.set_scalar("ok", sym::Value(std::int64_t{1}));
  };
  b.compute(std::move(k));
  run(b.take());
}

TEST(Interp, CommSliceOutOfBoundsFails) {
  ProgramBuilder b("t");
  b.get_rank("myid");
  b.decl_array("A", {I(10)});
  b.if_then(sym::eq(Expr::var("myid"), I(0)),
            [&] { b.send("A", I(1), I(8), I(5), 0); });  // 5 + 8 > 10
  Program p = b.take();
  EXPECT_THROW(run(p, 2), CheckError);
}

TEST(Interp, TrackedMemoryMatchesDeclarations) {
  ProgramBuilder b("t");
  b.decl_array("A", {I(100)});            // 800 B
  b.decl_array("B", {I(10), I(10)}, 4);   // 400 B
  auto r = run(b.take());
  EXPECT_EQ(r.engine.peak_target_bytes, 1200u);
}

TEST(Interp, DelayStatementForwardsClock) {
  ProgramBuilder b("t");
  b.decl_real("w", Expr::real(1e-6));
  b.delay(Expr::var("w") * 1000);
  auto r = run(b.take());
  EXPECT_EQ(r.engine.completion, vtime_from_ms(1));
  EXPECT_EQ(r.stats.delays, 1u);
}

TEST(Interp, TimerStartStopFeedsRecorder) {
  Program prog("timer_test");
  {
    // Hand-build: timer around a delay.
    auto start = prog.make_stmt(StmtKind::kTimerStart);
    start->name = "task";
    auto delay = prog.make_stmt(StmtKind::kDelay);
    delay->e1 = Expr::real(2e-3);
    auto stop = prog.make_stmt(StmtKind::kTimerStop);
    stop->name = "task";
    stop->e1 = I(1000);
    prog.main().push_back(std::move(start));
    prog.main().push_back(std::move(delay));
    prog.main().push_back(std::move(stop));
  }
  TimerRecorder timers;
  ExecOptions opts;
  opts.timers = &timers;
  run(prog, 1, opts);
  const auto params = timers.to_params();
  ASSERT_TRUE(params.contains("w_task"));
  EXPECT_NEAR(params.at("w_task"), 2e-6, 1e-12);
}

TEST(Interp, TimerStopWithoutStartFails) {
  Program prog("bad_timer");
  auto stop = prog.make_stmt(StmtKind::kTimerStop);
  stop->name = "task";
  stop->e1 = I(1);
  prog.main().push_back(std::move(stop));
  EXPECT_THROW(run(prog), CheckError);
}

TEST(Interp, ProceduresShareTheCallersFrame) {
  ProgramBuilder b("t");
  b.decl_int("x", I(1));
  b.procedure("bump", [&] { b.assign("x", Expr::var("x") * 10); });
  b.call("bump");
  b.call("bump");
  b.decl_int("ok", I(0));
  KernelSpec probe;
  probe.task = "p";
  probe.iters = I(1);
  probe.reads = {"x"};
  probe.writes = {"ok"};
  probe.body = [](KernelCtx& ctx) {
    EXPECT_EQ(ctx.scalar("x").as_int(), 100);
    ctx.set_scalar("ok", sym::Value(std::int64_t{1}));
  };
  b.compute(std::move(probe));
  run(b.take());
}

TEST(Interp, ProgramPrintingIsStable) {
  ProgramBuilder b("t");
  Expr n = b.decl_int("n", I(4));
  b.decl_array("A", {n});
  b.for_loop("i", I(1), n, [&](Expr) {});
  const std::string text = b.take().to_string();
  EXPECT_NE(text.find("int n = 4"), std::string::npos);
  EXPECT_NE(text.find("for i = 1 .. n"), std::string::npos);
  EXPECT_NE(text.find("array<8B> A[n]"), std::string::npos);
}

}  // namespace
}  // namespace stgsim::ir
