// Unit tests for the canonical JSON document model (support/json.hpp):
// parse/dump round trips, canonical (sorted, shortest-number) output, and
// structured parse errors. The campaign cache keys and byte-identical
// report contract both rest on dump() being a pure function of the value.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "support/json.hpp"

namespace stgsim {
namespace {

TEST(FormatDouble, IntegralValuesPrintWithoutDecimalPoint) {
  EXPECT_EQ(json::format_double(0.0), "0");
  EXPECT_EQ(json::format_double(42.0), "42");
  EXPECT_EQ(json::format_double(-7.0), "-7");
  EXPECT_EQ(json::format_double(1e15), "1000000000000000");
}

TEST(FormatDouble, ShortestRoundTrip) {
  // (smallest *normal* double — stod raises out_of_range on subnormals)
  for (const double v : {0.1, 1.0 / 3.0, 3.14159265358979, 120e6, 2.5e-8,
                         -0.75, 1e308, 2.2250738585072014e-308}) {
    const std::string s = json::format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(JsonValue, ParseDumpRoundTripIsIdentity) {
  const std::string text =
      R"({"a":[1,2.5,true,false,null,"x"],"b":{"nested":{"k":-3}},"c":""})";
  const json::Value v = json::Value::parse(text);
  EXPECT_EQ(v.dump(), text);
  EXPECT_EQ(json::Value::parse(v.dump()), v);
}

TEST(JsonValue, ObjectKeysAreSorted) {
  json::Value v = json::Value::object();
  v.set("zebra", json::Value(1));
  v.set("alpha", json::Value(2));
  v.set("mid", json::Value(3));
  EXPECT_EQ(v.dump(), R"({"alpha":2,"mid":3,"zebra":1})");
}

TEST(JsonValue, DumpIsIndependentOfInsertionOrder) {
  json::Value a = json::Value::object();
  a.set("x", json::Value(1));
  a.set("y", json::Value("s"));
  json::Value b = json::Value::object();
  b.set("y", json::Value("s"));
  b.set("x", json::Value(1));
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(a, b);
}

TEST(JsonValue, PrettyAndCompactParseToTheSameValue) {
  json::Value v = json::Value::object();
  v.set("list", json::Value(json::Value::Array{json::Value(1), json::Value(2)}));
  v.set("s", json::Value("hi"));
  EXPECT_EQ(json::Value::parse(v.dump(2)), json::Value::parse(v.dump()));
}

TEST(JsonValue, StringEscapesRoundTrip) {
  json::Value v = json::Value(std::string("quote\" backslash\\ newline\n "
                                          "tab\t control\x01 end"));
  EXPECT_EQ(json::Value::parse(v.dump()), v);
}

TEST(JsonValue, ParsesUnicodeEscapes) {
  const json::Value v = json::Value::parse(R"("Aé")");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9");  // "Aé" in UTF-8
}

TEST(JsonValue, NumbersRoundTripExactly) {
  const json::Value v = json::Value::parse("[0.1,1e-9,123456789012345,2.5e8]");
  EXPECT_EQ(json::Value::parse(v.dump()), v);
}

TEST(JsonValue, AsIntRejectsNonIntegralNumbers) {
  EXPECT_EQ(json::Value(7.0).as_int(), 7);
  EXPECT_THROW((void)json::Value(7.5).as_int(), std::runtime_error);
}

TEST(JsonValue, TypeMismatchesThrow) {
  const json::Value v = json::Value(1.0);
  EXPECT_THROW((void)v.as_string(), std::runtime_error);
  EXPECT_THROW((void)v.as_object(), std::runtime_error);
  EXPECT_THROW((void)v.at("k"), std::runtime_error);
}

TEST(JsonValue, MissingKeyNamesTheKey) {
  const json::Value v = json::Value::object();
  try {
    (void)v.at("needle");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("needle"), std::string::npos);
  }
}

TEST(JsonValue, MalformedDocumentsThrow) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "[1 2]", "nan"}) {
    EXPECT_THROW((void)json::Value::parse(bad), std::runtime_error) << bad;
  }
}

TEST(JsonValue, NonFiniteNumbersAreRejectedOnDump) {
  EXPECT_THROW(
      (void)json::Value(std::numeric_limits<double>::infinity()).dump(),
      std::runtime_error);
  EXPECT_THROW(
      (void)json::Value(std::numeric_limits<double>::quiet_NaN()).dump(),
      std::runtime_error);
}

TEST(JsonValue, NonFiniteNumbersAreRejectedOnParse) {
  // std::from_chars accepts inf/nan spellings JSON forbids, and an
  // overflowing exponent would otherwise round to infinity — none of
  // these may produce a Value the writer then refuses to serialize.
  for (const char* bad :
       {"inf", "-inf", "Infinity", "-Infinity", "nan", "NaN", "1e999",
        "-1e999", "[1e999]", "{\"x\": inf}"}) {
    EXPECT_THROW((void)json::Value::parse(bad), std::runtime_error) << bad;
  }
  // Large-but-finite values still parse.
  EXPECT_EQ(json::Value::parse("1e308").as_number(), 1e308);
}

}  // namespace
}  // namespace stgsim
