// Tests for the model-checking subsystem behind `stgsim check`.
//
// Covers: digest invariance across exhaustively explored schedules, the
// injected pre-safety-bound wildcard race (a divergence must be found,
// serialized, and deterministically replayable), deadlock-report
// invariance across schedules AND across threaded worker counts, and the
// DPOR reduction's equivalence with full exploration.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "harness/digest.hpp"
#include "harness/runner.hpp"
#include "ir/builder.hpp"
#include "mc/checker.hpp"
#include "mc/oracles.hpp"
#include "mc/schedule.hpp"
#include "sim/partition.hpp"

namespace stgsim {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

/// The anysource SAMPLE pattern: every nonzero rank computes a
/// rank-dependent amount and sends to rank 0; rank 0 collects with
/// wildcard receives. The classic shape where an unsafe wildcard commit
/// changes which message matches first.
ir::Program anysource_program(int nprocs) {
  apps::AppSpec spec;
  spec.name = "sample";
  spec.options = {{"pattern", "anysource"}, {"iters", "1"},
                  {"work", "2000"}, {"msg-doubles", "64"}};
  return apps::build_app(spec, nprocs);
}

harness::RunConfig base_config(int nprocs) {
  harness::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.mode = harness::Mode::kDirectExec;
  return cfg;
}

/// Three ranks, guaranteed deadlock with a parked wildcard: rank 2 posts
/// two wildcard receives but only one message (from rank 0) ever arrives,
/// and rank 1 waits on a send rank 2 never issues.
ir::Program deadlock_program() {
  ir::ProgramBuilder b("mc_deadlock");
  Expr myid = b.get_rank("myid");
  Expr msg = b.decl_int("MSG", I(16));
  b.decl_array("buf", {msg});
  b.if_then(sym::eq(myid, I(0)), [&] { b.send("buf", I(2), msg, I(0), 5); });
  b.if_then(sym::eq(myid, I(1)), [&] { b.recv("buf", I(2), msg, I(0), 5); });
  b.if_then(sym::eq(myid, I(2)), [&] {
    b.recv("buf", I(-1), msg, I(0), 5);
    b.recv("buf", I(-1), msg, I(0), 5);
  });
  return b.take();
}

// ---------------------------------------------------------------------------
// Digest invariance
// ---------------------------------------------------------------------------

TEST(McCheck, WildcardProgramIsDigestInvariantAcrossAllSchedules) {
  const ir::Program prog = anysource_program(2);
  mc::CheckOptions opts;
  opts.base = base_config(2);
  const mc::CheckReport rep = mc::check_program(prog, opts);
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.used_wildcard_recv);
  EXPECT_TRUE(rep.stats.complete);
  // More than one schedule must actually have been explored — a checker
  // that only ever sees the canonical order proves nothing.
  EXPECT_GT(rep.stats.schedules, 1u);
  EXPECT_EQ(rep.distinct_schedule_digests, 1u);
  EXPECT_GT(rep.threaded_trials_run, 0);
}

TEST(McCheck, RejectsMeasuredModeAndLargeRankCounts) {
  const ir::Program prog = anysource_program(2);
  mc::CheckOptions opts;
  opts.base = base_config(2);
  opts.base.mode = harness::Mode::kMeasured;
  EXPECT_FALSE(mc::check_program(prog, opts).error.empty());
  opts.base = base_config(9);
  EXPECT_FALSE(mc::check_program(prog, opts).error.empty());
}

// ---------------------------------------------------------------------------
// Injected wildcard race: find, serialize, replay
// ---------------------------------------------------------------------------

TEST(McCheck, InjectedUnsafeWildcardYieldsReplayableCounterexample) {
  const ir::Program prog = anysource_program(3);
  mc::CheckOptions opts;
  opts.base = base_config(3);
  opts.base.unsafe_wildcard_commit = true;
  const mc::CheckReport rep = mc::check_program(prog, opts);
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  ASSERT_FALSE(rep.divergences.empty())
      << "the pre-safety-bound wildcard race must be rediscovered";
  const mc::Divergence& d = rep.divergences.front();
  EXPECT_EQ(d.kind, mc::Divergence::Kind::kDigest) << d.description;
  ASSERT_FALSE(d.schedule.empty());

  // The schedule must survive a serialization round trip...
  const json::Value wire = mc::schedule_to_json(d.schedule);
  const std::vector<simk::ChoiceOption> parsed =
      mc::schedule_from_json(json::Value::parse(wire.dump()));
  ASSERT_EQ(parsed, d.schedule);

  // ...and replaying it must reproduce the divergent digest, twice.
  std::set<std::uint64_t> replayed;
  for (int i = 0; i < 2; ++i) {
    mc::ReplayOracle oracle(parsed);
    harness::RunConfig rc = base_config(3);
    rc.unsafe_wildcard_commit = true;
    rc.oracle = &oracle;
    const harness::RunOutcome out = harness::run_program(prog, rc);
    ASSERT_TRUE(out.ok()) << out.diagnostic;
    replayed.insert(harness::run_digest(out));
  }
  ASSERT_EQ(replayed.size(), 1u) << "replay must be deterministic";
  EXPECT_EQ(*replayed.begin(), harness::run_digest(d.observed));
  EXPECT_NE(harness::run_digest_hex(d.observed), rep.canonical_digest);
}

// ---------------------------------------------------------------------------
// The latency floor feeding the wildcard-park bound
// ---------------------------------------------------------------------------

/// A wildcard race only an unsound floor can lose: rank 1 sends a large
/// message immediately (long serialization => late arrival), rank 2 sits
/// idle past the floor and then sends a tiny message that overtakes it on
/// the wire. The sound bound keeps rank 0 parked until rank 2's earlier
/// arrival is queued; an inflated floor commits rank 1's candidate on
/// sight. In anysource_program arrival order always equals send order
/// (uniform sizes), so it cannot distinguish the two — this shape can.
ir::Program overtaking_sender_program() {
  ir::ProgramBuilder b("mc_floor_race");
  Expr myid = b.get_rank("myid");
  Expr big = b.decl_int("BIG", I(1024));  // 8 KiB: ~91us serialization
  b.decl_array("buf", {big});
  b.if_then(sym::eq(myid, I(0)), [&] {
    b.recv("buf", I(-1), big, I(0), 5);
    b.recv("buf", I(-1), big, I(0), 5);
  });
  b.if_then(sym::eq(myid, I(1)), [&] { b.send("buf", I(0), big, I(0), 5); });
  b.if_then(sym::eq(myid, I(2)), [&] {
    b.delay(Expr::real(50e-6));  // idle past the 25us floor, then overtake
    b.send("buf", I(0), I(1), I(0), 5);
  });
  return b.take();
}

TEST(McCheck, InflatedLatencyFloorTripsTheWildcardParkInvariant) {
  // The wildcard safe bound is (slowest other clock + advertised floor):
  // a floor tightened past the platform's true minimum path latency lets
  // a receiver commit a queued candidate while a slower sender could
  // still produce an earlier arrival. unsafe_floor_slack (test-only)
  // inflates the advertised floor without touching the platform, and the
  // checker must rediscover the resulting race — this is the regression
  // gate behind Platform::verify_floor().
  const ir::Program prog = overtaking_sender_program();
  mc::CheckOptions opts;
  opts.base = base_config(3);
  opts.base.unsafe_floor_slack = vtime_from_ms(1000);
  const mc::CheckReport rep = mc::check_program(prog, opts);
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  EXPECT_FALSE(rep.divergences.empty())
      << "an overstated latency floor must produce a schedule divergence";

  // The same configuration with the sound (platform-derived) floor is
  // schedule-invariant.
  opts.base.unsafe_floor_slack = 0;
  const mc::CheckReport sound = mc::check_program(prog, opts);
  ASSERT_TRUE(sound.error.empty()) << sound.error;
  EXPECT_TRUE(sound.ok());
}

// ---------------------------------------------------------------------------
// Deadlock determinism
// ---------------------------------------------------------------------------

TEST(McCheck, DeadlockReportsAreScheduleInvariant) {
  const ir::Program prog = deadlock_program();
  mc::CheckOptions opts;
  opts.base = base_config(3);
  const mc::CheckReport rep = mc::check_program(prog, opts);
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  EXPECT_EQ(rep.canonical.status, harness::RunStatus::kDeadlock);
  EXPECT_TRUE(rep.ok()) << (rep.divergences.empty()
                                ? ""
                                : rep.divergences.front().description);
  EXPECT_TRUE(rep.stats.complete);
  // Rank 0 finishes; ranks 1 and 2 are the blocked set, rank 2 on a
  // parked wildcard.
  ASSERT_EQ(rep.canonical.blocked_ranks.size(), 2u);
}

TEST(ThreadedDeadlock, BlockedRankReportsInvariantAcrossWorkerCounts) {
  const ir::Program prog = deadlock_program();

  harness::RunConfig seq = base_config(3);
  const harness::RunOutcome ref = harness::run_program(prog, seq);
  ASSERT_EQ(ref.status, harness::RunStatus::kDeadlock) << ref.diagnostic;
  ASSERT_EQ(ref.blocked_ranks.size(), 2u);
  const std::uint64_t ref_key = harness::deadlock_report_key(ref.blocked_ranks);

  for (const int workers : {1, 2, 4}) {
    harness::RunConfig cfg = base_config(3);
    cfg.threads = workers;
    const harness::RunOutcome out = harness::run_program(prog, cfg);
    ASSERT_EQ(out.status, harness::RunStatus::kDeadlock)
        << "workers=" << workers << ": " << out.diagnostic;
    // The *report* (ranks, clocks, what they wait on) is scheduler
    // infrastructure-independent; deadlock_report_key excludes
    // home_worker exactly so this comparison is meaningful.
    EXPECT_EQ(harness::deadlock_report_key(out.blocked_ranks), ref_key)
        << "workers=" << workers;
    // home_worker grouping must match the block partition in force.
    const std::vector<int> part = simk::block_partition(3, workers);
    for (const auto& b : out.blocked_ranks) {
      EXPECT_EQ(b.home_worker, part[static_cast<std::size_t>(b.rank)])
          << "workers=" << workers << " rank=" << b.rank;
    }
  }
}

// ---------------------------------------------------------------------------
// DPOR reduction
// ---------------------------------------------------------------------------

TEST(McExplore, DporExploresSameDigestsAsFullExploration) {
  const ir::Program prog = anysource_program(3);
  mc::CheckOptions dpor_opts;
  dpor_opts.base = base_config(3);
  dpor_opts.threaded_workers = 0;  // isolate the exploration under test
  mc::CheckOptions full_opts = dpor_opts;
  full_opts.use_dpor = false;
  full_opts.max_schedules = 4096;

  const mc::CheckReport dpor = mc::check_program(prog, dpor_opts);
  const mc::CheckReport full = mc::check_program(prog, full_opts);
  ASSERT_TRUE(dpor.error.empty()) << dpor.error;
  ASSERT_TRUE(full.error.empty()) << full.error;
  EXPECT_TRUE(dpor.ok());
  EXPECT_TRUE(full.ok());
  ASSERT_TRUE(dpor.stats.complete);
  ASSERT_TRUE(full.stats.complete);
  // Sleep sets only prune redundant interleavings: same digest coverage,
  // never more runs than the unreduced search.
  EXPECT_EQ(dpor.distinct_schedule_digests, full.distinct_schedule_digests);
  EXPECT_LE(dpor.stats.schedules, full.stats.schedules);
  EXPECT_GT(full.stats.schedules, 1u);
}

// ---------------------------------------------------------------------------
// The optimistic (Time Warp) path under the protocol gate
// ---------------------------------------------------------------------------

TEST(McCheck, OptimisticScheduleIsDigestInvariantAcrossAllSchedules) {
  // Every explored delivery order may trigger different speculative
  // commits and rollbacks; all of them must still commit the *canonical
  // conservative* digest. The canonical run drops the optimistic
  // schedule — that asymmetry is the contract under test.
  const ir::Program prog = anysource_program(3);
  mc::CheckOptions opts;
  opts.base = base_config(3);
  opts.base.schedule = harness::Schedule::kOptimistic;
  const mc::CheckReport rep = mc::check_program(prog, opts);
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  EXPECT_TRUE(rep.ok()) << (rep.divergences.empty()
                                ? ""
                                : rep.divergences.front().description);
  EXPECT_TRUE(rep.used_wildcard_recv);
  EXPECT_GT(rep.stats.schedules, 1u);
  EXPECT_EQ(rep.distinct_schedule_digests, 1u);
  EXPECT_GT(rep.threaded_trials_run, 0);
}

TEST(McCheck, InjectedCommitBeforeGvtIsRediscoveredOnTheOptimisticPath) {
  const ir::Program prog = anysource_program(3);
  mc::CheckOptions opts;
  opts.base = base_config(3);
  opts.base.schedule = harness::Schedule::kOptimistic;
  opts.base.unsafe_commit_before_gvt = true;
  const mc::CheckReport rep = mc::check_program(prog, opts);
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  ASSERT_FALSE(rep.divergences.empty())
      << "committing speculative state before GVT passes it must "
         "reintroduce the wildcard race";
  EXPECT_EQ(rep.divergences.front().kind, mc::Divergence::Kind::kDigest)
      << rep.divergences.front().description;
}

}  // namespace
}  // namespace stgsim
