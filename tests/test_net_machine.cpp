// Unit tests for the network and compute machine models.
#include <gtest/gtest.h>

#include "machine/compute.hpp"
#include "net/network.hpp"

namespace stgsim {
namespace {

TEST(Network, WireTimeIsLatencyPlusBandwidthTerm) {
  net::NetworkParams p;
  p.latency = vtime_from_us(10);
  p.bytes_per_sec = 1e8;
  net::Network n(p, 2);
  EXPECT_EQ(n.wire_time(0), vtime_from_us(10));
  // 1 MB at 100 MB/s = 10 ms.
  EXPECT_EQ(n.wire_time(1000000), vtime_from_us(10) + vtime_from_ms(10));
}

TEST(Network, ArrivalWithoutContentionIsReadyPlusFlight) {
  net::NetworkParams p;
  p.latency = vtime_from_us(10);
  p.bytes_per_sec = 1e8;
  net::Network n(p, 2);
  Rng rng(1);
  EXPECT_EQ(n.arrival(0, 1, vtime_from_us(5), 0, rng),
            vtime_from_us(5) + vtime_from_us(10));
}

TEST(Network, ContentionSerializesInjection) {
  net::NetworkParams p;
  p.latency = vtime_from_us(0);
  p.bytes_per_sec = 1e6;  // 1 MB/s: 1000 bytes = 1 ms serialization
  p.model_contention = true;
  net::Network n(p, 2);
  Rng rng(1);
  const VTime a1 = n.arrival(0, 1, 0, 1000, rng);
  const VTime a2 = n.arrival(0, 1, 0, 1000, rng);  // queued behind the first
  EXPECT_EQ(a1, vtime_from_ms(1));
  EXPECT_EQ(a2, vtime_from_ms(2));
  // A different source has its own NIC.
  const VTime b1 = n.arrival(1, 0, 0, 1000, rng);
  EXPECT_EQ(b1, vtime_from_ms(1));
}

TEST(Network, JitterIsDeterministicGivenTheStream) {
  net::NetworkParams p;
  p.jitter_frac = 0.05;
  auto sample = [&] {
    net::Network n(p, 1);
    Rng rng(77);
    std::vector<VTime> v;
    for (int i = 0; i < 10; ++i) v.push_back(n.arrival(0, 0, 0, 4096, rng));
    return v;
  };
  EXPECT_EQ(sample(), sample());
}

TEST(Network, JitterStaysBounded) {
  net::NetworkParams p;
  p.jitter_frac = 0.10;
  net::Network n(p, 1);
  net::Network clean(net::NetworkParams{}, 1);
  Rng rng(3);
  const double base = vtime_to_sec(clean.arrival(0, 0, 0, 8192, rng));
  Rng rng2(3);
  for (int i = 0; i < 200; ++i) {
    const double t = vtime_to_sec(n.arrival(0, 0, 0, 8192, rng2));
    EXPECT_GT(t, base * 0.2);
    EXPECT_LT(t, base * 2.0);
  }
}

TEST(Network, EagerThresholdSplitsProtocols) {
  net::NetworkParams p;
  p.eager_threshold = 1024;
  net::Network n(p, 1);
  EXPECT_FALSE(n.uses_rendezvous(1024));
  EXPECT_TRUE(n.uses_rendezvous(1025));
}

TEST(Network, PresetsAreOrdered) {
  // The Origin 2000's shared-memory MPI beats the SP switch on both
  // latency and bandwidth, as in the literature of the period.
  const auto sp = net::ibm_sp();
  const auto o2k = net::origin2000();
  EXPECT_LT(o2k.latency, sp.latency);
  EXPECT_GT(o2k.bytes_per_sec, sp.bytes_per_sec);
}

TEST(Compute, CacheFactorMonotoneAndBounded) {
  machine::ComputeParams p;
  p.cache_penalty = 0.4;
  EXPECT_DOUBLE_EQ(machine::cache_factor(p, 0.0), 1.0);
  double prev = 1.0;
  for (double ws : {1e3, 1e5, 1e7, 1e9}) {
    const double f = machine::cache_factor(p, ws);
    EXPECT_GT(f, prev);
    EXPECT_LT(f, 1.0 + p.cache_penalty);
    prev = f;
  }
}

TEST(Compute, KernelCostScalesLinearlyInItersAndFlops) {
  machine::ComputeParams p;
  const VTime t = machine::kernel_cost(p, 1000, 2.0, 0.0);
  EXPECT_EQ(machine::kernel_cost(p, 2000, 2.0, 0.0), 2 * t);
  EXPECT_EQ(machine::kernel_cost(p, 1000, 4.0, 0.0), 2 * t);
}

TEST(Compute, SecondsPerIterationMatchesKernelCost) {
  machine::ComputeParams p;
  const double w = machine::seconds_per_iteration(p, 3.0, 1e6);
  EXPECT_NEAR(vtime_to_sec(machine::kernel_cost(p, 500, 3.0, 1e6)), 500 * w,
              1e-9);
}

TEST(Compute, JitterRequiresRngAndStaysFair) {
  machine::ComputeParams p;
  p.compute_jitter_frac = 0.02;
  // Without an RNG the jitter silently does not apply.
  const VTime clean = machine::kernel_cost(p, 1e6, 1.0, 0.0, nullptr);
  EXPECT_EQ(clean, machine::kernel_cost(p, 1e6, 1.0, 0.0, nullptr));

  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 300; ++i) {
    sum += vtime_to_sec(machine::kernel_cost(p, 1e6, 1.0, 0.0, &rng));
  }
  const double mean = sum / 300.0;
  // Unbiased to within a few sigma.
  EXPECT_NEAR(mean, vtime_to_sec(clean), vtime_to_sec(clean) * 0.01);
}

TEST(Compute, NodePresetsDiffer) {
  const auto sp = machine::ibm_sp_node();
  const auto o2k = machine::origin2000_node();
  EXPECT_GT(sp.flop_time_ns, o2k.flop_time_ns);  // R10k clocked higher
  EXPECT_LT(sp.cache_bytes, o2k.cache_bytes);
}

}  // namespace
}  // namespace stgsim
