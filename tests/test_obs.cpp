// Observability-layer tests: the Recorder must (a) never perturb
// simulated results — digests with and without it are bit-identical under
// both schedulers — and (b) agree with the independently-maintained
// RankStats on everything they both count (comm matrix row/column totals,
// protocol counters, timeline spans).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/nas_sp.hpp"
#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "harness/digest.hpp"
#include "harness/runner.hpp"
#include "obs/obs.hpp"

namespace stgsim {
namespace {

// Small configurations of all four apps (mirrors test_digest.cpp).
std::vector<std::pair<std::string, std::pair<ir::Program, int>>> all_apps() {
  std::vector<std::pair<std::string, std::pair<ir::Program, int>>> out;
  {
    apps::TomcatvConfig c;
    c.n = 128;
    c.iterations = 2;
    out.emplace_back("tomcatv", std::pair{apps::make_tomcatv(c), 8});
  }
  {
    apps::Sweep3DConfig c;
    c.it = 2;
    c.jt = 2;
    c.kt = 12;
    c.kb = 4;
    c.mm = 2;
    c.mmi = 1;
    c.npe_i = 2;
    c.npe_j = 2;
    out.emplace_back("sweep3d", std::pair{apps::make_sweep3d(c), 4});
  }
  {
    apps::NasSpConfig c = apps::sp_class('A', 2, 2);
    out.emplace_back("nas_sp", std::pair{apps::make_nas_sp(c), 4});
  }
  {
    apps::SampleConfig c;
    c.iterations = 5;
    c.msg_doubles = 256;
    c.work_iters = 1000;
    out.emplace_back("sample", std::pair{apps::make_sample(c), 8});
  }
  return out;
}

harness::RunOutcome run_with(const ir::Program& prog, int nprocs, int threads,
                             obs::Recorder* rec) {
  harness::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.mode = harness::Mode::kDirectExec;
  cfg.threads = threads;
  cfg.obs = rec;
  harness::RunOutcome out = harness::run_program(prog, cfg);
  EXPECT_TRUE(out.ok()) << out.diagnostic;
  return out;
}

// Comm-matrix totals vs the independently-counted RankStats, all four
// apps: row sums of p2p messages are that rank's sends, column sums its
// receives, and row bytes (p2p + collective-internal) are bytes_sent —
// the matrix increments at exactly the accounting sites that feed stats.
TEST(Obs, CommMatrixAgreesWithRankStats) {
  for (const auto& [name, app] : all_apps()) {
    const auto& [prog, nprocs] = app;
    obs::Options oopts;
    oopts.comm_matrix = true;
    obs::Recorder rec(oopts, nprocs);
    harness::RunOutcome out = run_with(prog, nprocs, 0, &rec);
    obs::MetricsSnapshot s = rec.snapshot();
    ASSERT_EQ(s.nranks, nprocs) << name;
    const auto n = static_cast<std::size_t>(nprocs);
    ASSERT_EQ(s.p2p_messages.size(), n * n) << name;
    std::uint64_t total_msgs = 0;
    for (std::size_t r = 0; r < n; ++r) {
      std::uint64_t row_msgs = 0, col_msgs = 0, row_bytes = 0;
      for (std::size_t c = 0; c < n; ++c) {
        row_msgs += s.p2p_messages[r * n + c];
        col_msgs += s.p2p_messages[c * n + r];
        row_bytes += s.p2p_bytes[r * n + c] + s.coll_bytes[r * n + c];
      }
      const auto& st = out.per_rank_stats[r];
      EXPECT_EQ(row_msgs, st.sends) << name << " rank " << r;
      EXPECT_EQ(col_msgs, st.recvs) << name << " rank " << r;
      EXPECT_EQ(row_bytes, st.bytes_sent) << name << " rank " << r;
      total_msgs += row_msgs;
    }
    EXPECT_EQ(total_msgs, out.stats.sends) << name;
  }
}

// The load-bearing guarantee: observation never changes what is
// simulated. Full instrumentation (trace + metrics + matrix) on vs off,
// sequential and threaded, all four apps — digests bit-identical.
TEST(Obs, RecorderLeavesDigestsBitIdentical) {
  for (const auto& [name, app] : all_apps()) {
    const auto& [prog, nprocs] = app;
    for (int threads : {0, 3}) {
      harness::RunOutcome plain = run_with(prog, nprocs, threads, nullptr);
      obs::Options oopts;
      oopts.trace = true;
      oopts.comm_matrix = true;
      obs::Recorder rec(oopts, nprocs);
      harness::RunOutcome observed = run_with(prog, nprocs, threads, &rec);
      EXPECT_EQ(harness::run_digest(plain), harness::run_digest(observed))
          << name << " threads=" << threads;
    }
  }
}

// Metrics must agree with the quantities the engine and smpi already
// report through other channels.
TEST(Obs, MetricsAgreeWithEngineAndStats) {
  apps::SampleConfig c;
  c.iterations = 5;
  c.msg_doubles = 256;
  c.work_iters = 1000;
  ir::Program prog = apps::make_sample(c);
  obs::Recorder rec(obs::Options{}, 8);
  harness::RunOutcome out = run_with(prog, 8, 0, &rec);
  const obs::MetricsSnapshot& s = out.metrics;

  bool found = false;
  EXPECT_EQ(s.value("engine.slices", &found), static_cast<double>(out.slices));
  EXPECT_TRUE(found);
  EXPECT_EQ(s.value("engine.messages_sent"), static_cast<double>(out.messages));
  // Every user message went eager or rendezvous; together they are the
  // sends RankStats counted, and the size histogram holds each exactly once.
  const double eager = s.value("smpi.eager_msgs");
  const double rndv = s.value("smpi.rendezvous_msgs");
  EXPECT_EQ(eager + rndv, static_cast<double>(out.stats.sends));
  std::uint64_t hist_total = 0;
  for (std::uint64_t b : s.msg_size_hist) hist_total += b;
  EXPECT_EQ(hist_total, out.stats.sends);
  // Matching: every hit is an attempt, every block was woken exactly once.
  EXPECT_LE(s.value("smpi.comm_time_sec"), 1e9);
  EXPECT_GE(s.value("engine.match_attempts"), s.value("engine.match_hits"));
  EXPECT_EQ(s.value("engine.blocks"), s.value("engine.wakeups"));
}

// Threaded runs must populate the parallel-protocol metrics family;
// sequential runs must not emit it at all.
TEST(Obs, ParallelMetricsPopulatedInThreadedRunsOnly) {
  apps::NasSpConfig c = apps::sp_class('A', 2, 2);
  ir::Program prog = apps::make_nas_sp(c);

  obs::Recorder seq_rec(obs::Options{}, 4);
  harness::RunOutcome seq = run_with(prog, 4, 0, &seq_rec);
  bool found = false;
  seq.metrics.value("parallel.rounds", &found);
  EXPECT_FALSE(found);
  EXPECT_TRUE(seq.metrics.window_advance_hist.empty());

  obs::Recorder par_rec(obs::Options{}, 4);
  harness::RunOutcome par = run_with(prog, 4, 2, &par_rec);
  const obs::MetricsSnapshot& s = par.metrics;
  EXPECT_EQ(s.value("parallel.workers", &found), 2.0);
  EXPECT_TRUE(found);
  EXPECT_GT(s.value("parallel.rounds"), 0.0);
  // Locality split is exhaustive: intra + mailbox + barrier = all
  // deliveries, and cross is the sum of the two cross-partition paths.
  const double intra = s.value("parallel.intra_messages");
  const double mailbox = s.value("parallel.mailbox_messages");
  const double barrier = s.value("parallel.barrier_messages");
  const double cross = s.value("parallel.cross_messages");
  EXPECT_EQ(cross, mailbox + barrier);
  EXPECT_GT(cross, 0.0);
  EXPECT_EQ(intra + cross, static_cast<double>(par.messages));
  // Per-worker busy/idle virtual time and slice counts, both workers.
  double slices = 0.0;
  for (int w = 0; w < 2; ++w) {
    const std::string prefix = "parallel.worker" + std::to_string(w) + ".";
    EXPECT_GE(s.value(prefix + "busy_vtime_sec", &found), 0.0);
    EXPECT_TRUE(found) << prefix;
    EXPECT_GE(s.value(prefix + "idle_vtime_sec"), 0.0);
    slices += s.value(prefix + "slices");
  }
  EXPECT_EQ(slices, static_cast<double>(par.slices));
  // The window-advance histogram accounts for every round.
  ASSERT_FALSE(s.window_advance_hist.empty());
  std::uint64_t hist_total = 0;
  for (std::uint64_t b : s.window_advance_hist) hist_total += b;
  EXPECT_EQ(hist_total, static_cast<std::uint64_t>(s.value("parallel.rounds")));

  // And the JSON writer carries the histogram through.
  std::ostringstream ms;
  obs::Recorder::write_metrics_json(ms, s);
  EXPECT_NE(ms.str().find("\"window_advance_hist\": ["), std::string::npos);
}

// Trace spans are well-formed virtual-time intervals and the writer emits
// parseable Chrome trace-event JSON structure.
TEST(Obs, ChromeTraceSpansAreWellFormed) {
  apps::SampleConfig c;
  c.iterations = 3;
  c.msg_doubles = 64;
  c.work_iters = 500;
  ir::Program prog = apps::make_sample(c);
  obs::Options oopts;
  oopts.trace = true;
  obs::Recorder rec(oopts, 4);
  harness::RunOutcome out = run_with(prog, 4, 0, &rec);

  std::uint64_t span_count = 0;
  for (int r = 0; r < 4; ++r) {
    const auto& shard = rec.shard(r);
    EXPECT_FALSE(shard.spans.empty()) << "rank " << r;
    for (const auto& sp : shard.spans) {
      EXPECT_GE(sp.begin, 0);
      EXPECT_LE(sp.begin, sp.end);
      EXPECT_LE(sp.end, out.predicted_time);
    }
    for (const auto& sp : shard.block_spans) {
      EXPECT_LE(sp.begin, sp.end);
    }
    // "trace.spans" counts everything on the timeline: op spans plus the
    // engine-level blocked intervals.
    span_count += shard.spans.size() + shard.block_spans.size();
  }
  EXPECT_EQ(out.metrics.value("trace.spans"),
            static_cast<double>(span_count));

  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread names
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // duration events
  EXPECT_NE(json.find("\"cat\":\"p2p\""), std::string::npos);
  const auto last = json.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
}

// The JSON writers emit their top-level keys (full parse validation — a
// json.load round-trip — runs in CI on the CLI's output files).
TEST(Obs, MetricsJsonHasExpectedShape) {
  apps::SampleConfig c;
  c.iterations = 3;
  c.msg_doubles = 64;
  c.work_iters = 500;
  ir::Program prog = apps::make_sample(c);
  obs::Options oopts;
  oopts.comm_matrix = true;
  obs::Recorder rec(oopts, 4);
  harness::RunOutcome out = run_with(prog, 4, 0, &rec);

  std::ostringstream ms;
  obs::Recorder::write_metrics_json(ms, out.metrics);
  const std::string mj = ms.str();
  EXPECT_EQ(mj.front(), '{');
  EXPECT_NE(mj.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(mj.find("\"msg_size_hist\": ["), std::string::npos);
  EXPECT_NE(mj.find("\"comm_matrix\":"), std::string::npos);

  std::ostringstream xs;
  obs::Recorder::write_comm_matrix_json(xs, out.metrics);
  const std::string xj = xs.str();
  EXPECT_EQ(xj.front(), '{');
  EXPECT_NE(xj.find("\"nranks\": 4"), std::string::npos);
  EXPECT_NE(xj.find("\"p2p_messages\": ["), std::string::npos);
  EXPECT_NE(xj.find("\"coll_bytes\": ["), std::string::npos);
}

}  // namespace
}  // namespace stgsim
