// Tests for the optimistic (Time Warp) scheduler: committed digests must
// be bit-identical to the sequential conservative scheduler across apps,
// worker counts and topologies; a straggler fault plan must force real
// rollbacks (observable through parallel.rollbacks); rollback must undo
// speculative sends with anti-messages (cascading into downstream ranks);
// and the commit-before-GVT injection must reintroduce the race the
// protocol exists to fix.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/nas_sp.hpp"
#include "apps/registry.hpp"
#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "fault/fault.hpp"
#include "harness/digest.hpp"
#include "harness/machines.hpp"
#include "harness/runner.hpp"
#include "ir/builder.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace stgsim {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

harness::RunConfig base_config(int nprocs) {
  harness::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.mode = harness::Mode::kDirectExec;
  return cfg;
}

std::uint64_t digest_of(const ir::Program& prog, harness::RunConfig cfg) {
  harness::RunOutcome out = harness::run_program(prog, cfg);
  EXPECT_TRUE(out.ok()) << out.diagnostic;
  return harness::run_digest(out);
}

// ---------------------------------------------------------------------------
// Digest identity: all four apps x workers x topologies
// ---------------------------------------------------------------------------

struct AppCase {
  const char* name;
  ir::Program prog;
  int nprocs;
};

std::vector<AppCase> small_apps() {
  std::vector<AppCase> cases;
  {
    apps::TomcatvConfig c;
    c.n = 128;
    c.iterations = 2;
    cases.push_back({"tomcatv", apps::make_tomcatv(c), 8});
  }
  {
    apps::Sweep3DConfig c;
    c.it = 2;
    c.jt = 2;
    c.kt = 12;
    c.kb = 4;
    c.mm = 2;
    c.mmi = 1;
    c.npe_i = 2;
    c.npe_j = 4;
    cases.push_back({"sweep3d", apps::make_sweep3d(c), 8});
  }
  { cases.push_back({"nas_sp", apps::make_nas_sp(apps::sp_class('A', 2, 2)), 4}); }
  {
    apps::SampleConfig c;
    c.pattern = apps::SamplePattern::kAnySource;
    c.iterations = 2;
    c.msg_doubles = 64;
    c.work_iters = 2000;
    cases.push_back({"sample", apps::make_sample(c), 8});
  }
  return cases;
}

TEST(Optimistic, DigestsMatchSequentialAcrossWorkersAndTopologies) {
  const std::vector<std::string> machines = {
      "ibm_sp", "ibm_sp[topo=torus]"};
  for (const AppCase& app : small_apps()) {
    for (const std::string& mspec : machines) {
      harness::RunConfig ref = base_config(app.nprocs);
      ref.machine = harness::parse_machine_spec(mspec);
      const std::uint64_t want = digest_of(app.prog, ref);

      // Sequential-hosted optimistic (threads == 0).
      harness::RunConfig seq_opt = ref;
      seq_opt.schedule = harness::Schedule::kOptimistic;
      EXPECT_EQ(digest_of(app.prog, seq_opt), want)
          << app.name << " seq-optimistic on " << mspec;

      // Threaded optimistic: workers free-run with no lookahead window;
      // GVT + rollback must still commit the sequential digest.
      for (int workers : {2, 4, 8}) {
        harness::RunConfig thr = ref;
        thr.schedule = harness::Schedule::kOptimistic;
        thr.threads = workers;
        EXPECT_EQ(digest_of(app.prog, thr), want)
            << app.name << " x " << workers << " workers on " << mspec;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Straggler-forced rollback (deterministic, via the MC-mode engine)
// ---------------------------------------------------------------------------

/// Delivery order chosen so the straggler's (rank 1's) fault-degraded
/// message reaches the wildcard root and is speculatively committed
/// before any other sender's earlier-arriving traffic lands — the
/// canonical Time Warp causality violation, forced deterministically.
class StragglerFirstOracle : public simk::ScheduleOracle {
 public:
  std::size_t choose(const std::vector<simk::ChoiceOption>& options) override {
    using K = simk::ChoiceOption::Kind;
    // 1. Ship the straggler's messages into rank 0 first.
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i].kind == K::kDeliver && options[i].src == 1 &&
          options[i].dst == 0) {
        return i;
      }
    }
    // 2. Let rank 0 run (and commit the straggler's message on sight).
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i].kind == K::kResume && options[i].rank <= 1) return i;
    }
    // 3. Only then release everyone else's earlier-arriving messages.
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i].kind == K::kDeliver) return i;
    }
    // 4. Resume the highest-numbered ready rank (downstream consumers
    //    before remaining senders, to maximize speculative damage).
    std::size_t best = 0;
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i].rank >= options[best].rank) best = i;
    }
    return best;
  }
};

ir::Program anysource_program(int nprocs) {
  apps::AppSpec spec;
  spec.name = "sample";
  spec.options = {{"pattern", "anysource"},
                  {"iters", "1"},
                  {"work", "2000"},
                  {"msg-doubles", "64"}};
  return apps::build_app(spec, nprocs);
}

/// Degrading the 1->0 link makes rank 1 the straggler: its message is in
/// flight the longest, so a commit-on-sight of it is provably premature.
const char* kStragglerPlan = "link:src=1,dst=0,latency=8";

TEST(Optimistic, StragglerFaultPlanForcesRollbackAndDigestStillMatches) {
  const ir::Program prog = anysource_program(3);

  harness::RunConfig ref = base_config(3);
  ref.faults = fault::parse_fault_plan(kStragglerPlan);
  const std::uint64_t want = digest_of(prog, ref);

  StragglerFirstOracle oracle;
  obs::Recorder rec(obs::Options{}, 3);
  harness::RunConfig opt = ref;
  opt.schedule = harness::Schedule::kOptimistic;
  opt.oracle = &oracle;
  opt.obs = &rec;
  harness::RunOutcome out = harness::run_program(prog, opt);
  ASSERT_TRUE(out.ok()) << out.diagnostic;

  EXPECT_EQ(harness::run_digest(out), want)
      << "rollback must recover the conservative commit order";
  EXPECT_GE(out.parallel.rollbacks, 1u)
      << "the straggler plan must actually force a rollback";

  // The counter also surfaces through the obs metrics contract.
  double metric = -1.0;
  for (const auto& [name, value] : out.metrics.scalars) {
    if (name == "parallel.rollbacks") metric = value;
  }
  EXPECT_EQ(metric, static_cast<double>(out.parallel.rollbacks));
}

// ---------------------------------------------------------------------------
// Anti-messages: rollback undoes speculative sends, cascading downstream
// ---------------------------------------------------------------------------

/// Rank 0 wildcard-gathers two messages and forwards to rank 3 after the
/// first: a premature first commit means the forward itself was
/// speculative and must be annihilated (cascading into rank 3) when the
/// earlier message finally lands.
ir::Program forwarding_program() {
  ir::ProgramBuilder b("optimistic_forward");
  Expr myid = b.get_rank("myid");
  Expr msg = b.decl_int("MSG", I(16));
  b.decl_array("buf", {msg});
  b.if_then(sym::eq(myid, I(0)), [&] {
    b.recv("buf", I(-1), msg, I(0), 7);
    b.send("buf", I(3), msg, I(0), 9);
    b.recv("buf", I(-1), msg, I(0), 7);
  });
  b.if_then(sym::eq(myid, I(1)), [&] { b.send("buf", I(0), msg, I(0), 7); });
  b.if_then(sym::eq(myid, I(2)), [&] { b.send("buf", I(0), msg, I(0), 7); });
  b.if_then(sym::eq(myid, I(3)), [&] { b.recv("buf", I(0), msg, I(0), 9); });
  return b.take();
}

TEST(Optimistic, RollbackCancelsSpeculativeSendsWithAntiMessages) {
  const ir::Program prog = forwarding_program();

  harness::RunConfig ref = base_config(4);
  ref.faults = fault::parse_fault_plan(kStragglerPlan);
  harness::RunOutcome ref_out = harness::run_program(prog, ref);
  ASSERT_TRUE(ref_out.ok()) << ref_out.diagnostic;
  const std::uint64_t want = harness::run_digest(ref_out);

  StragglerFirstOracle oracle;
  harness::RunConfig opt = ref;
  opt.schedule = harness::Schedule::kOptimistic;
  opt.oracle = &oracle;
  harness::RunOutcome out = harness::run_program(prog, opt);
  ASSERT_TRUE(out.ok()) << out.diagnostic;

  EXPECT_EQ(harness::run_digest(out), want)
      << harness::describe_run_divergence(ref_out, out);
  EXPECT_GE(out.parallel.rollbacks, 1u);
  EXPECT_GE(out.parallel.anti_messages, 1u)
      << "the speculative 0->3 forward must be cancelled by an anti-message";
}

// ---------------------------------------------------------------------------
// Injected commit-before-GVT race
// ---------------------------------------------------------------------------

TEST(Optimistic, CommitBeforeGvtInjectionDivergesDeterministically) {
  const ir::Program prog = anysource_program(3);

  harness::RunConfig ref = base_config(3);
  ref.faults = fault::parse_fault_plan(kStragglerPlan);
  const std::uint64_t want = digest_of(prog, ref);

  // With records and straggler detection disabled, the premature commit
  // of the straggler's message becomes permanent: the run completes but
  // commits a different receive order than the conservative scheduler.
  StragglerFirstOracle oracle;
  harness::RunConfig bad = ref;
  bad.schedule = harness::Schedule::kOptimistic;
  bad.unsafe_commit_before_gvt = true;
  bad.oracle = &oracle;
  harness::RunOutcome out = harness::run_program(prog, bad);
  ASSERT_TRUE(out.ok()) << out.diagnostic;
  EXPECT_NE(harness::run_digest(out), want)
      << "the injection must reintroduce the wildcard race";
  EXPECT_EQ(out.parallel.rollbacks, 0u)
      << "with the injection active nothing is ever detected or rolled back";
}

// ---------------------------------------------------------------------------
// Config surface
// ---------------------------------------------------------------------------

TEST(Optimistic, ScheduleNamesRoundTrip) {
  EXPECT_STREQ(harness::schedule_name(harness::Schedule::kConservative),
               "conservative");
  EXPECT_STREQ(harness::schedule_name(harness::Schedule::kOptimistic),
               "optimistic");
  harness::Schedule s = harness::Schedule::kConservative;
  EXPECT_TRUE(harness::parse_schedule("optimistic", &s));
  EXPECT_EQ(s, harness::Schedule::kOptimistic);
  EXPECT_TRUE(harness::parse_schedule("conservative", &s));
  EXPECT_EQ(s, harness::Schedule::kConservative);
  EXPECT_FALSE(harness::parse_schedule("timewarp", &s));
}

}  // namespace
}  // namespace stgsim
