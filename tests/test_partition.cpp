// Rank-to-worker partitioning: the pure graph algorithms in
// src/sim/partition.*, the static affinity extraction in
// src/harness/affinity.*, and the end-to-end properties the threaded
// scheduler depends on — comm-aware placement strictly reduces
// cross-partition traffic on the 2-D apps, and no placement ever changes
// simulated results (digest identity across modes and schedulers).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "apps/nas_sp.hpp"
#include "apps/sweep3d.hpp"
#include "harness/affinity.hpp"
#include "harness/digest.hpp"
#include "harness/runner.hpp"
#include "sim/partition.hpp"

namespace stgsim {
namespace {

using simk::Affinity;
using simk::PartitionMode;

// ---------------------------------------------------------------------------
// Pure partitioners
// ---------------------------------------------------------------------------

void expect_balanced(const std::vector<int>& part, int nranks, int workers) {
  ASSERT_EQ(part.size(), static_cast<std::size_t>(nranks));
  std::vector<int> sizes(static_cast<std::size_t>(workers), 0);
  for (int w : part) {
    ASSERT_GE(w, 0);
    ASSERT_LT(w, workers);
    ++sizes[static_cast<std::size_t>(w)];
  }
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*mx - *mn, 1);
}

TEST(Partition, BlockAndInterleaveShapes) {
  const auto blk = simk::block_partition(10, 4);
  expect_balanced(blk, 10, 4);
  // Contiguous runs (remainder ranks spread across workers: 3,2,3,2).
  EXPECT_EQ(blk, (std::vector<int>{0, 0, 0, 1, 1, 2, 2, 2, 3, 3}));
  const auto il = simk::interleave_partition(10, 4);
  expect_balanced(il, 10, 4);
  EXPECT_EQ(il, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}));
}

Affinity grid_affinity(int w, int h, double weight) {
  Affinity aff(w * h);
  for (int j = 0; j < h; ++j) {
    for (int i = 0; i < w; ++i) {
      const int r = j * w + i;
      if (i + 1 < w) aff.add(r, r + 1, weight);
      if (j + 1 < h) aff.add(r, r + w, weight);
    }
  }
  return aff;
}

TEST(Partition, CutWeightCountsEachCrossEdgeOnce) {
  Affinity aff(4);
  aff.add(0, 1, 2.0);
  aff.add(1, 2, 3.0);
  aff.add(2, 3, 5.0);
  const std::vector<int> part = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(simk::cut_weight(aff, part), 3.0);
  EXPECT_DOUBLE_EQ(simk::cut_weight(aff, {0, 1, 0, 1}), 10.0);
  EXPECT_DOUBLE_EQ(simk::cut_weight(aff, {0, 0, 0, 0}), 0.0);
}

TEST(Partition, CommFindsTilesOnA2dGrid) {
  // 8x2 grid over 4 workers: block = rows-of-4 cuts 10 edges; the optimal
  // 2x2 tiling cuts 6. KL must escape the zero-gain plateau between them.
  const Affinity aff = grid_affinity(8, 2, 1.0);
  const auto blk = simk::block_partition(16, 4);
  const auto cm = simk::comm_partition(aff, 4);
  expect_balanced(cm, 16, 4);
  EXPECT_DOUBLE_EQ(simk::cut_weight(aff, blk), 10.0);
  EXPECT_DOUBLE_EQ(simk::cut_weight(aff, cm), 6.0);
}

TEST(Partition, CommNeverWorseThanBlockOnGrids) {
  for (int w : {2, 3, 4, 8}) {
    for (auto [gw, gh] : {std::pair{4, 4}, {6, 6}, {8, 2}, {16, 1}}) {
      const Affinity aff = grid_affinity(gw, gh, 1.0);
      const auto blk = simk::block_partition(aff.nranks(), w);
      const auto cm = simk::comm_partition(aff, w);
      expect_balanced(cm, aff.nranks(), w);
      EXPECT_LE(simk::cut_weight(aff, cm), simk::cut_weight(aff, blk))
          << gw << "x" << gh << " over " << w;
    }
  }
}

TEST(Partition, CommIsDeterministic) {
  const Affinity aff = grid_affinity(6, 6, 1.0);
  EXPECT_EQ(simk::comm_partition(aff, 4), simk::comm_partition(aff, 4));
}

TEST(Partition, MakePartitionDispatchesAndParses) {
  PartitionMode m;
  EXPECT_TRUE(simk::parse_partition_mode("comm", &m));
  EXPECT_EQ(m, PartitionMode::kComm);
  EXPECT_TRUE(simk::parse_partition_mode("interleave", &m));
  EXPECT_EQ(m, PartitionMode::kInterleave);
  EXPECT_FALSE(simk::parse_partition_mode("metis", &m));
  const Affinity aff = grid_affinity(4, 2, 1.0);
  EXPECT_EQ(simk::make_partition(PartitionMode::kBlock, 8, 2, nullptr),
            simk::block_partition(8, 2));
  EXPECT_EQ(simk::make_partition(PartitionMode::kComm, 8, 2, &aff),
            simk::comm_partition(aff, 2));
}

// ---------------------------------------------------------------------------
// Static affinity extraction
// ---------------------------------------------------------------------------

TEST(Affinity, Sweep3dAffinityIsTheProcessGrid) {
  apps::Sweep3DConfig sc;
  sc.npe_i = 4;
  sc.npe_j = 4;
  const Affinity aff = harness::comm_affinity(apps::make_sweep3d(sc), 16);
  ASSERT_EQ(aff.nranks(), 16);
  // Every rank talks only to its grid neighbors (|di|+|dj| == 1).
  for (int r = 0; r < 16; ++r) {
    for (const auto& [peer, w] : aff.neighbors(r)) {
      EXPECT_GT(w, 0.0);
      const int di = std::abs(r % 4 - peer % 4);
      const int dj = std::abs(r / 4 - peer / 4);
      EXPECT_EQ(di + dj, 1) << r << " <-> " << peer;
    }
  }
  EXPECT_GT(aff.total_weight(), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end: placement quality and digest invariance
// ---------------------------------------------------------------------------

harness::RunOutcome run_app(const ir::Program& prog, int procs, int threads,
                            PartitionMode part, obs::Recorder* obs = nullptr) {
  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.mode = harness::Mode::kDirectExec;
  cfg.threads = threads;
  cfg.partition = part;
  cfg.obs = obs;
  return harness::run_program(prog, cfg);
}

TEST(Partition, CommBeatsBlockOnSweep3dCrossTraffic) {
  apps::Sweep3DConfig sc;
  sc.npe_i = 8;
  sc.npe_j = 2;
  const ir::Program prog = apps::make_sweep3d(sc);
  const auto block = run_app(prog, 16, 4, PartitionMode::kBlock);
  const auto comm = run_app(prog, 16, 4, PartitionMode::kComm);
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(comm.ok());
  // Message totals are identical — only locality changes.
  EXPECT_EQ(block.messages, comm.messages);
  EXPECT_LT(comm.parallel.cross_messages(), block.parallel.cross_messages());
  EXPECT_GT(comm.parallel.intra_messages, block.parallel.intra_messages);
}

TEST(Partition, CommBeatsBlockOnNasSpCrossTraffic) {
  const ir::Program prog = apps::make_nas_sp(apps::sp_class('A', 4, 2));
  const auto block = run_app(prog, 16, 4, PartitionMode::kBlock);
  const auto comm = run_app(prog, 16, 4, PartitionMode::kComm);
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(comm.ok());
  EXPECT_EQ(block.messages, comm.messages);
  EXPECT_LT(comm.parallel.cross_messages(), block.parallel.cross_messages());
}

TEST(Partition, DigestsIdenticalAcrossModesAndSchedulers) {
  apps::Sweep3DConfig sc;
  sc.npe_i = 8;
  sc.npe_j = 2;
  const ir::Program prog = apps::make_sweep3d(sc);
  const auto seq = run_app(prog, 16, 0, PartitionMode::kBlock);
  ASSERT_TRUE(seq.ok());
  const std::uint64_t want = harness::run_digest(seq);
  for (PartitionMode m : {PartitionMode::kBlock, PartitionMode::kInterleave,
                          PartitionMode::kComm}) {
    for (int threads : {1, 2, 4}) {
      const auto out = run_app(prog, 16, threads, m);
      ASSERT_TRUE(out.ok());
      EXPECT_EQ(harness::run_digest(out), want)
          << simk::partition_mode_name(m) << " x " << threads << " workers";
    }
  }
}

TEST(Partition, SingleThreadFastPathSkipsParallelProtocol) {
  const ir::Program prog = apps::make_nas_sp(apps::sp_class('A', 2, 2));
  const auto seq = run_app(prog, 4, 0, PartitionMode::kBlock);
  const auto one = run_app(prog, 4, 1, PartitionMode::kComm);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(harness::run_digest(one), harness::run_digest(seq));
  EXPECT_EQ(one.parallel.rounds, 0u);
  EXPECT_EQ(one.parallel.cross_messages(), 0u);
}

}  // namespace
}  // namespace stgsim
