// End-to-end tests of the full compile-and-simulate pipeline on the
// paper's Figure-1 example: a shift communication plus a computational
// loop nest, compiled into a simplified program with a delay call.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "harness/runner.hpp"
#include "ir/builder.hpp"

namespace stgsim {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

/// Figure 1(a): every process sends its boundary column to its left
/// neighbour, then runs a stencil loop nest whose bounds depend on the
/// block size b = ceil(N/P).
ir::Program make_shift_program(std::int64_t n) {
  ir::ProgramBuilder b("fig1_shift");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");
  Expr N = b.decl_int("N", I(n));
  Expr blk = b.decl_int("b", sym::ceil_div(N, P));

  b.decl_array("A", {N, blk + 1});
  b.decl_array("D", {N, blk + 1});

  {
    ir::KernelSpec init;
    init.task = "init";
    init.iters = N * (blk + 1);
    init.flops_per_iter = 1.0;
    init.writes = {"D"};
    init.body = [](ir::KernelCtx& ctx) {
      double* d = ctx.array("D");
      const std::size_t n_elems = ctx.array_elems("D");
      for (std::size_t i = 0; i < n_elems; ++i) {
        d[i] = static_cast<double>(i % 17) * 0.25;
      }
    };
    b.compute(std::move(init));
  }

  b.if_then(sym::gt(myid, I(0)), [&] {
    b.send("D", myid - 1, N - 2, I(0), /*tag=*/5);
  });
  b.if_then(sym::lt(myid, P - 1), [&] {
    b.recv("D", myid + 1, N - 2, blk * N, /*tag=*/5);
  });

  {
    ir::KernelSpec stencil;
    stencil.task = "stencil";
    stencil.iters = (N - 2) * sym::max(sym::min(N, myid * blk + blk) -
                                           sym::max(I(2), myid * blk + 1) + 1,
                                       I(0));
    stencil.flops_per_iter = 2.0;
    stencil.reads = {"D"};
    stencil.writes = {"A"};
    stencil.body = [](ir::KernelCtx& ctx) {
      double* a = ctx.array("A");
      const double* d = ctx.array("D");
      const std::size_t n_elems = ctx.array_elems("A");
      for (std::size_t i = 1; i < n_elems; ++i) {
        a[i] = (d[i] + d[i - 1]) * 0.5;
      }
    };
    b.compute(std::move(stencil));
  }

  return b.take();
}

class PipelineTest : public ::testing::Test {
 protected:
  // Large enough that the w_i read_param prologue of the simplified
  // program (a real cost the paper's version also pays) is negligible
  // next to the modeled computation.
  static constexpr std::int64_t kN = 2048;
  ir::Program prog_ = make_shift_program(kN);
  core::CompileResult compiled_ = core::compile(prog_);
};

TEST_F(PipelineTest, SliceEliminatesArraysButKeepsStructure) {
  EXPECT_FALSE(compiled_.slice.array_is_live("A"));
  EXPECT_FALSE(compiled_.slice.array_is_live("D"));
  EXPECT_TRUE(compiled_.slice.needed_vars.contains("N"));
  EXPECT_TRUE(compiled_.slice.needed_vars.contains("b"));
  EXPECT_TRUE(compiled_.slice.needed_vars.contains("myid"));
  EXPECT_TRUE(compiled_.slice.needed_vars.contains("P"));
}

TEST_F(PipelineTest, SimplifiedProgramHasDelaysAndParams) {
  EXPECT_EQ(compiled_.simplified.condensed.size(), 2u);  // init + stencil
  EXPECT_TRUE(compiled_.simplified.params.contains("w_init"));
  EXPECT_TRUE(compiled_.simplified.params.contains("w_stencil"));
  EXPECT_EQ(compiled_.simplified.dummy_buffer_comms, 2u);  // send + recv

  bool has_dummy_decl = false;
  ir::for_each_stmt(compiled_.simplified.program, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kDeclArray && s.name == "__dummy_buf") {
      has_dummy_decl = true;
    }
    // No compute kernels survive in the simplified program.
    EXPECT_NE(s.kind, ir::StmtKind::kCompute);
  });
  EXPECT_TRUE(has_dummy_decl);
}

TEST_F(PipelineTest, StgCapturesStructure) {
  EXPECT_EQ(compiled_.stg.count(core::StgNodeKind::kCompute), 2u);
  EXPECT_EQ(compiled_.stg.count(core::StgNodeKind::kComm), 2u);
  ASSERT_EQ(compiled_.stg.comm_edges.size(), 1u);
  // The mapping is q = myid - 1, matching Fig. 1(b).
  sym::MapEnv env;
  env.set("myid", sym::Value(std::int64_t{4}));
  env.set("P", sym::Value(std::int64_t{8}));
  env.set("N", sym::Value(kN));
  env.set("b", sym::Value(kN / 8));
  EXPECT_EQ(compiled_.stg.comm_edges[0].mapping.eval_int(env), 3);
}

TEST_F(PipelineTest, TimerProgramWrapsEveryKernel) {
  std::size_t starts = 0, stops = 0, kernels = 0;
  ir::for_each_stmt(compiled_.timer_program, [&](const ir::Stmt& s) {
    starts += s.kind == ir::StmtKind::kTimerStart;
    stops += s.kind == ir::StmtKind::kTimerStop;
    kernels += s.kind == ir::StmtKind::kCompute;
  });
  EXPECT_EQ(kernels, 2u);
  EXPECT_EQ(starts, 2u);
  EXPECT_EQ(stops, 2u);
}

TEST_F(PipelineTest, CommunicationTraceEquivalence) {
  const int nprocs = 8;
  const auto machine = harness::ibm_sp_machine();
  const auto params =
      harness::calibrate(compiled_.timer_program, nprocs, machine);

  // Run original under DE and simplified under AM, recording comm traces.
  smpi::CommTrace trace_de(nprocs), trace_am(nprocs);
  for (auto [program, trace, params_in] :
       {std::tuple{&prog_, &trace_de, std::map<std::string, double>{}},
        std::tuple{&compiled_.simplified.program, &trace_am, params}}) {
    harness::RunConfig cfg;
    cfg.nprocs = nprocs;
    cfg.machine = machine;
    cfg.mode = harness::Mode::kDirectExec;
    cfg.params = params_in;

    smpi::World::Options wopts;
    wopts.net = cfg.machine.net;
    wopts.compute = cfg.machine.compute;
    wopts.trace = trace;
    smpi::World world(wopts, nprocs);
    for (const auto& [k, v] : cfg.params) world.set_param(k, v);

    simk::EngineConfig ec;
    ec.num_processes = nprocs;
    simk::Engine engine(ec);
    engine.set_body([&](simk::Process& p) {
      smpi::Comm comm(world, p);
      ir::execute(*program, comm);
    });
    engine.run();
  }

  // The simplified program performs exactly the same user-level
  // communication as the original — modulo the read_param prologue, which
  // appears as bcasts at the head of each rank's trace.
  for (int r = 0; r < nprocs; ++r) {
    auto am = trace_am.per_rank()[static_cast<std::size_t>(r)];
    const auto& de = trace_de.per_rank()[static_cast<std::size_t>(r)];
    ASSERT_GE(am.size(), params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      EXPECT_EQ(am[i].kind, smpi::CommEvent::Kind::kBcast)
          << "rank " << r << " prologue op " << i;
    }
    am.erase(am.begin(), am.begin() + static_cast<std::ptrdiff_t>(params.size()));
    ASSERT_EQ(am.size(), de.size()) << "rank " << r;
    for (std::size_t i = 0; i < am.size(); ++i) {
      EXPECT_EQ(am[i].kind, de[i].kind) << "rank " << r << " op " << i;
      EXPECT_EQ(am[i].peer, de[i].peer) << "rank " << r << " op " << i;
      EXPECT_EQ(am[i].tag, de[i].tag) << "rank " << r << " op " << i;
      EXPECT_EQ(am[i].bytes, de[i].bytes) << "rank " << r << " op " << i;
    }
  }
}

TEST_F(PipelineTest, AnalyticalModelPredictsCloseToDirectExecution) {
  const int nprocs = 8;
  const auto machine = harness::ibm_sp_machine();
  const auto params =
      harness::calibrate(compiled_.timer_program, nprocs, machine);

  harness::RunConfig de_cfg;
  de_cfg.nprocs = nprocs;
  de_cfg.machine = machine;
  de_cfg.mode = harness::Mode::kDirectExec;
  const auto de = harness::run_program(prog_, de_cfg);

  harness::RunConfig am_cfg = de_cfg;
  am_cfg.mode = harness::Mode::kAnalytical;
  am_cfg.params = params;
  const auto am = harness::run_program(compiled_.simplified.program, am_cfg);

  ASSERT_TRUE(de.ok());
  ASSERT_TRUE(am.ok());
  EXPECT_GT(de.predicted_seconds(), 0.0);
  // Calibration at the same process count: AM should track DE tightly.
  EXPECT_NEAR(am.predicted_seconds(), de.predicted_seconds(),
              0.10 * de.predicted_seconds());
}

TEST_F(PipelineTest, AnalyticalModelUsesFarLessMemory) {
  const int nprocs = 8;
  const auto machine = harness::ibm_sp_machine();
  const auto params =
      harness::calibrate(compiled_.timer_program, nprocs, machine);

  harness::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.machine = machine;
  cfg.mode = harness::Mode::kDirectExec;
  const auto de = harness::run_program(prog_, cfg);

  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  const auto am = harness::run_program(compiled_.simplified.program, cfg);

  EXPECT_GT(de.peak_target_bytes, 10 * am.peak_target_bytes)
      << "DE " << de.peak_target_bytes << " vs AM " << am.peak_target_bytes;
}

TEST_F(PipelineTest, MemoryCapReportsOutOfMemory) {
  harness::RunConfig cfg;
  cfg.nprocs = 8;
  cfg.mode = harness::Mode::kDirectExec;
  cfg.memory_cap_bytes = 4096;  // far below the arrays' footprint
  const auto out = harness::run_program(prog_, cfg);
  EXPECT_TRUE(out.out_of_memory());
}

TEST_F(PipelineTest, CompileReportMentionsKeyFacts) {
  const std::string report = compiled_.report(prog_);
  EXPECT_NE(report.find("delay("), std::string::npos);
  EXPECT_NE(report.find("w_stencil"), std::string::npos);
  EXPECT_NE(report.find("slice"), std::string::npos);
}

}  // namespace
}  // namespace stgsim
