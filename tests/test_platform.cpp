// Unit + property tests for the routed platform layer (net::Platform):
// topology shapes, route/cost consistency, the latency floor's
// by-construction soundness, and the backward-compatibility contract —
// the flat preset must reproduce the legacy single-link arrival() model
// bit-for-bit, including emulation contention and jitter.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "harness/machines.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "support/check.hpp"

namespace stgsim {
namespace {

net::PlatformParams with_topo(net::Topology t) {
  net::PlatformParams p;
  p.topo = t;
  return p;
}

const net::Topology kAllTopos[] = {
    net::Topology::kFlat, net::Topology::kTorus, net::Topology::kFatTree,
    net::Topology::kDragonfly};

// ---------------------------------------------------------------------------
// Shapes
// ---------------------------------------------------------------------------

TEST(Platform, FlatShapeIsOneNicPerRank) {
  net::Platform p(with_topo(net::Topology::kFlat), vtime_from_us(25), 8);
  EXPECT_EQ(p.link_count(), 8);
  EXPECT_EQ(p.min_hops(), 1);
  EXPECT_EQ(p.max_hops(), 1);
  EXPECT_EQ(p.min_path_latency(), vtime_from_us(25));
  EXPECT_EQ(p.link_name(3), "nic3");
}

TEST(Platform, TorusAutoDimsAreNearSquare) {
  net::Platform p(with_topo(net::Topology::kTorus), vtime_from_us(25), 12);
  EXPECT_EQ(p.torus_dims(), (std::vector<int>{3, 4}));
  // Directed links: node x dim x direction.
  EXPECT_EQ(p.link_count(), 12 * 2 * 2);
  // Diameter of a 3x4 torus: 1 + 2 wraparound hops.
  EXPECT_EQ(p.max_hops(), 3);
}

TEST(Platform, TorusExplicitDimsMustMatchRankCount) {
  net::PlatformParams pp = with_topo(net::Topology::kTorus);
  pp.torus_dims = {4, 4};
  net::Platform ok(pp, vtime_from_us(25), 16);
  EXPECT_EQ(ok.torus_dims(), (std::vector<int>{4, 4}));
  try {
    net::Platform bad(pp, vtime_from_us(25), 8);
    FAIL() << "torus extents 4x4 must be rejected for 8 ranks";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("multiply"), std::string::npos)
        << e.what();
  }
}

TEST(Platform, FatTreeHopsSplitByLeaf) {
  net::PlatformParams pp = with_topo(net::Topology::kFatTree);
  pp.fattree_radix = 4;  // 2 hosts per leaf, 2 spines
  net::Platform p(pp, vtime_from_us(25), 8);
  EXPECT_EQ(p.cost(0, 1).hops, 2);  // same leaf
  EXPECT_EQ(p.cost(0, 2).hops, 4);  // via a spine
  EXPECT_EQ(p.min_hops(), 2);
  EXPECT_EQ(p.max_hops(), 4);
  net::PlatformParams odd = pp;
  odd.fattree_radix = 3;
  EXPECT_THROW(net::Platform(odd, vtime_from_us(25), 8), std::runtime_error);
}

TEST(Platform, DragonflyHopsByLocality) {
  net::PlatformParams pp = with_topo(net::Topology::kDragonfly);
  pp.df_routers = 2;
  pp.df_hosts = 2;  // groups of 4 ranks
  net::Platform p(pp, vtime_from_us(25), 16);
  EXPECT_EQ(p.cost(0, 1).hops, 2);  // same router
  EXPECT_EQ(p.cost(0, 2).hops, 3);  // same group, other router
  EXPECT_GE(p.cost(0, 5).hops, 3);  // cross-group: at least one global link
  EXPECT_LE(p.max_hops(), 5);
}

// ---------------------------------------------------------------------------
// Route / cost consistency
// ---------------------------------------------------------------------------

TEST(Platform, RouteLengthMatchesCostHopsOnEveryPair) {
  for (net::Topology t : kAllTopos) {
    for (int nranks : {1, 2, 5, 16, 24}) {
      net::PlatformParams pp = with_topo(t);
      pp.fattree_radix = 4;
      pp.df_routers = 2;
      pp.df_hosts = 2;
      net::Platform p(pp, vtime_from_us(25), nranks);
      std::vector<int> links;
      for (int s = 0; s < nranks; ++s) {
        for (int d = 0; d < nranks; ++d) {
          if (s == d) continue;
          const net::Platform::PathCost pc = p.cost(s, d);
          p.route(s, d, &links);
          EXPECT_EQ(static_cast<int>(links.size()), pc.hops)
              << net::topology_name(t) << " P=" << nranks << " " << s << "->"
              << d;
          for (int l : links) {
            ASSERT_GE(l, 0);
            ASSERT_LT(l, p.link_count());
          }
          EXPECT_EQ(pc.latency, vtime_from_us(25) + (pc.hops - 1) *
                                                        pp.hop_latency);
        }
      }
    }
  }
}

TEST(Platform, LinkNamesAreUnique) {
  for (net::Topology t : kAllTopos) {
    net::PlatformParams pp = with_topo(t);
    pp.fattree_radix = 4;
    pp.df_routers = 2;
    pp.df_hosts = 2;
    net::Platform p(pp, vtime_from_us(25), 12);
    std::set<std::string> names;
    for (int i = 0; i < p.link_count(); ++i) names.insert(p.link_name(i));
    EXPECT_EQ(static_cast<int>(names.size()), p.link_count())
        << net::topology_name(t);
  }
}

// ---------------------------------------------------------------------------
// The latency floor
// ---------------------------------------------------------------------------

TEST(Platform, NoPairUndercutsTheFloorIncludingSelfSends) {
  for (net::Topology t : kAllTopos) {
    net::Platform p(with_topo(t), vtime_from_us(25), 16);
    for (int s = 0; s < 16; ++s) {
      for (int d = 0; d < 16; ++d) {
        EXPECT_GE(p.cost(s, d).latency, p.min_path_latency())
            << net::topology_name(t) << " " << s << "->" << d;
      }
    }
    p.verify_floor(p.min_path_latency());  // must not throw
  }
}

TEST(Platform, TightenedFloorTripsVerifyFloor) {
  // The regression the floor exists to prevent: advertising a bound some
  // routed pair can undercut. One tick past min_path_latency must trip
  // the check on every topology.
  for (net::Topology t : kAllTopos) {
    net::Platform p(with_topo(t), vtime_from_us(25), 16);
    EXPECT_THROW(p.verify_floor(p.min_path_latency() + 1), CheckError)
        << net::topology_name(t);
  }
}

TEST(Network, MinLatencyIsHopAware) {
  net::NetworkParams params;
  params.latency = vtime_from_us(25);
  params.platform.topo = net::Topology::kFatTree;
  params.platform.fattree_radix = 4;
  params.platform.hop_latency = vtime_from_us(2);
  net::Network n(params, 8);
  // Cheapest pair: same leaf, 2 hops = latency + 1 extra hop.
  EXPECT_EQ(n.min_latency(), vtime_from_us(25) + vtime_from_us(2));
  Rng rng(1);
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      EXPECT_GE(n.arrival(s, d, 0, 0, rng), n.min_latency());
    }
  }
}

TEST(Network, FaultPlanCannotLowerTheFloor) {
  net::NetworkParams params;
  net::Network n(params, 4);
  // Degradation factors >= 1 install fine; the validated plan keeps the
  // floor sound (latency factors < 1 are rejected by FaultPlan::validate,
  // which set_fault_plan runs at install time).
  n.set_fault_plan(fault::parse_fault_plan("link:src=0,dst=1,latency=4"));
  EXPECT_THROW(
      n.set_fault_plan(fault::parse_fault_plan("link:src=0,dst=1,latency=0.5")),
      std::exception);
}

// ---------------------------------------------------------------------------
// Flat preset == legacy model, bit for bit
// ---------------------------------------------------------------------------

/// The pre-platform arrival() closed form (PR 6 and earlier), verbatim:
/// per-source NIC contention, single-link latency, jitter clamp at half
/// the base latency.
class LegacyNetwork {
 public:
  LegacyNetwork(const net::NetworkParams& params, int nranks)
      : p_(params), nic_free_(static_cast<std::size_t>(nranks), 0) {}

  VTime arrival(int src, int /*dst*/, VTime ready, std::size_t bytes,
                Rng& rng) {
    VTime start = ready;
    const VTime serialize =
        vtime_from_sec(static_cast<double>(bytes) / p_.bytes_per_sec);
    if (p_.model_contention) {
      auto& nic = nic_free_[static_cast<std::size_t>(src)];
      start = std::max(start, nic);
      nic = start + serialize;
    }
    VTime flight = p_.latency + serialize;
    if (p_.jitter_frac > 0.0) {
      const double factor =
          std::max(0.2, 1.0 + p_.jitter_frac * rng.next_gaussian());
      flight = vtime_from_sec(vtime_to_sec(flight) * factor);
      flight = std::max(flight, p_.latency / 2);
    }
    return start + flight;
  }

 private:
  net::NetworkParams p_;
  std::vector<VTime> nic_free_;
};

TEST(Platform, FlatPresetReproducesLegacyArrivalBitForBit) {
  // Sweep the emulation switches; for each, fire a deterministic but
  // irregular message sequence through both models with identical RNG
  // streams and require exact equality — this is the contract that keeps
  // every pre-platform golden digest valid.
  struct Case {
    bool contention;
    double jitter;
  };
  for (const Case& c : {Case{false, 0.0}, Case{true, 0.0}, Case{false, 0.05},
                        Case{true, 0.08}}) {
    net::NetworkParams params;
    params.model_contention = c.contention;
    params.jitter_frac = c.jitter;
    const int nranks = 6;
    net::Network routed(params, nranks);
    LegacyNetwork legacy(params, nranks);
    Rng rng_a(42), rng_b(42);
    Rng driver(7);
    for (int i = 0; i < 500; ++i) {
      const int src = static_cast<int>(driver.next_below(nranks));
      const int dst = static_cast<int>(driver.next_below(nranks));
      const VTime ready = static_cast<VTime>(driver.next_below(1000)) * 100;
      const std::size_t bytes = driver.next_below(64 * 1024);
      ASSERT_EQ(routed.arrival(src, dst, ready, bytes, rng_a),
                legacy.arrival(src, dst, ready, bytes, rng_b))
          << "contention=" << c.contention << " jitter=" << c.jitter
          << " msg " << i << ": " << src << "->" << dst << " " << bytes
          << "B at " << ready;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-link observability
// ---------------------------------------------------------------------------

TEST(Network, LinkStatsCountRoutedTraffic) {
  net::NetworkParams params;
  params.platform.topo = net::Topology::kFatTree;
  params.platform.fattree_radix = 4;
  net::Network n(params, 8);
  n.enable_link_stats();
  Rng rng(1);
  n.arrival(0, 1, 0, 100, rng);  // same leaf: 2 hops
  n.arrival(0, 2, 0, 100, rng);  // cross leaf: 4 hops
  n.arrival(0, 2, 0, 100, rng);
  EXPECT_EQ(n.hop_hist(), (std::vector<std::uint64_t>{0, 0, 1, 0, 2}));
  const auto links = n.link_usage();
  std::uint64_t total_msgs = 0;
  for (const auto& l : links) {
    EXPECT_GT(l.messages, 0u);
    total_msgs += l.messages;
  }
  // 2 + 4 + 4 link traversals.
  EXPECT_EQ(total_msgs, 10u);
  // host0.up carries all three messages.
  const auto up = std::find_if(links.begin(), links.end(),
                               [](const auto& l) { return l.name == "host0.up"; });
  ASSERT_NE(up, links.end());
  EXPECT_EQ(up->messages, 3u);
  EXPECT_EQ(up->bytes, 300u);
}

// ---------------------------------------------------------------------------
// Machine spec strings
// ---------------------------------------------------------------------------

TEST(MachineSpecPlatform, TopologyFieldsParseAndRoundTrip) {
  const harness::MachineSpec m = harness::parse_machine_spec(
      "ibm_sp[topo=torus,torus_dims=4x4,hop_us=2]");
  EXPECT_EQ(m.net.platform.topo, net::Topology::kTorus);
  EXPECT_EQ(m.net.platform.torus_dims, (std::vector<int>{4, 4}));
  EXPECT_EQ(m.net.platform.hop_latency, vtime_from_us(2));
  const std::string spec = harness::machine_spec_string(m);
  EXPECT_EQ(spec, "ibm_sp[hop_us=2,topo=torus,torus_dims=4x4]");
  EXPECT_EQ(harness::machine_spec_string(harness::parse_machine_spec(spec)),
            spec);
}

TEST(MachineSpecPlatform, CollectiveAlgoFieldsParseAndRoundTrip) {
  const harness::MachineSpec m = harness::parse_machine_spec(
      "ibm_sp[algo.bcast=ring,algo.barrier=dissemination,"
      "coll_ring_threshold=32768]");
  EXPECT_EQ(m.coll.bcast, smpi::CollAlgo::kRing);
  EXPECT_EQ(m.coll.barrier, smpi::CollAlgo::kDissemination);
  EXPECT_EQ(m.coll.ring_threshold, 32768u);
  const std::string spec = harness::machine_spec_string(m);
  EXPECT_EQ(harness::machine_spec_string(harness::parse_machine_spec(spec)),
            spec);
}

TEST(MachineSpecPlatform, DefaultPlatformStaysCanonicallyBare) {
  // topo=flat and algo.*=auto are the defaults: a spec that sets them
  // explicitly canonicalizes back to the bare machine name, so the
  // campaign cache key format is unchanged from pre-platform caches.
  const harness::MachineSpec m =
      harness::parse_machine_spec("ibm_sp[topo=flat,algo.bcast=auto]");
  EXPECT_EQ(harness::machine_spec_string(m), "ibm_sp");
}

TEST(MachineSpecPlatform, BadValuesAreStructuredErrors) {
  EXPECT_THROW((void)harness::parse_machine_spec("ibm_sp[topo=mesh]"),
               std::runtime_error);
  EXPECT_THROW((void)harness::parse_machine_spec("ibm_sp[torus_dims=4xx]"),
               std::runtime_error);
  EXPECT_THROW((void)harness::parse_machine_spec("ibm_sp[algo.bcast=quantum]"),
               std::runtime_error);
  // Pairwise is an alltoall algorithm, not a bcast one.
  EXPECT_THROW((void)harness::parse_machine_spec("ibm_sp[algo.bcast=pairwise]"),
               std::runtime_error);
  // Unknown keys still list what is accepted, including the new fields.
  try {
    (void)harness::parse_machine_spec("ibm_sp[nosuch=1]");
    FAIL() << "unknown key must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("topo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("algo.bcast"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace stgsim
