// Tests for the IR program structure itself: def/use effects, cloning,
// validation and builder misuse.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/program.hpp"

namespace stgsim::ir {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

TEST(Program, StmtEffectsForScalars) {
  Program p("t");
  auto s = p.make_stmt(StmtKind::kAssign);
  s->name = "x";
  s->e1 = Expr::var("a") + Expr::var("b");
  auto fx = stmt_effects(*s);
  EXPECT_EQ(fx.defs, (std::vector<std::string>{"x"}));
  EXPECT_EQ(std::set<std::string>(fx.uses.begin(), fx.uses.end()),
            (std::set<std::string>{"a", "b"}));
}

TEST(Program, StmtEffectsForComm) {
  Program p("t");
  auto s = p.make_stmt(StmtKind::kSend);
  s->name = "A";
  s->e1 = Expr::var("dst");
  s->e2 = Expr::var("n");
  s->e3 = I(0);
  auto fx = stmt_effects(*s);
  EXPECT_TRUE(fx.defs.empty());
  std::set<std::string> uses(fx.uses.begin(), fx.uses.end());
  EXPECT_TRUE(uses.contains("A"));    // payload
  EXPECT_TRUE(uses.contains("dst"));
  EXPECT_TRUE(uses.contains("n"));
}

TEST(Program, StmtEffectsForKernels) {
  Program p("t");
  auto s = p.make_stmt(StmtKind::kCompute);
  s->kernel.task = "k";
  s->kernel.iters = Expr::var("N") * Expr::var("b");
  s->kernel.reads = {"X"};
  s->kernel.writes = {"Y", "r"};
  auto fx = stmt_effects(*s);
  EXPECT_EQ(std::set<std::string>(fx.defs.begin(), fx.defs.end()),
            (std::set<std::string>{"Y", "r"}));
  std::set<std::string> uses(fx.uses.begin(), fx.uses.end());
  EXPECT_TRUE(uses.contains("X"));
  EXPECT_TRUE(uses.contains("N"));
  EXPECT_TRUE(uses.contains("b"));
}

TEST(Program, CloneIsDeepAndPreservesIds) {
  ProgramBuilder b("orig");
  Expr n = b.decl_int("n", I(5));
  b.for_loop("i", I(1), n, [&](Expr) { b.assign("n", n + 1); });
  Program p = b.take();

  Program c = p.clone();
  std::vector<int> ids_p, ids_c;
  for_each_stmt(p, [&](const Stmt& s) { ids_p.push_back(s.id); });
  for_each_stmt(c, [&](const Stmt& s) { ids_c.push_back(s.id); });
  EXPECT_EQ(ids_p, ids_c);
  EXPECT_EQ(p.to_string(), c.to_string());

  // The clone owns its statements: mutating it leaves the original alone.
  c.main().clear();
  EXPECT_NE(p.to_string(), c.to_string());
}

TEST(Program, CloneContinuesIdAllocation) {
  ProgramBuilder b("orig");
  b.decl_int("x", I(1));
  Program p = b.take();
  Program c = p.clone();
  auto extra = c.make_stmt(StmtKind::kBarrier);
  // Fresh ids never collide with cloned ones.
  for_each_stmt(p, [&](const Stmt& s) { EXPECT_NE(s.id, extra->id); });
}

TEST(Program, ValidateRejectsDuplicateIds) {
  Program p("t");
  auto a = p.make_stmt(StmtKind::kBarrier);
  auto b = p.make_stmt(StmtKind::kBarrier);
  b->id = a->id;
  p.main().push_back(std::move(a));
  p.main().push_back(std::move(b));
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(Program, ValidateRejectsUnknownProcedureCalls) {
  Program p("t");
  auto c = p.make_stmt(StmtKind::kCall);
  c->name = "ghost";
  p.main().push_back(std::move(c));
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(Program, ForEachStmtVisitsNestedBodies) {
  ProgramBuilder b("t");
  b.if_then_else(sym::eq(I(1), I(1)),
                 [&] { b.barrier(); },
                 [&] {
                   b.for_loop("i", I(1), I(2), [&](Expr) { b.barrier(); });
                 });
  Program p = b.take();
  std::size_t barriers = 0;
  for_each_stmt(p, [&](const Stmt& s) {
    barriers += s.kind == StmtKind::kBarrier;
  });
  EXPECT_EQ(barriers, 2u);
}

TEST(Builder, TakeTwiceFails) {
  ProgramBuilder b("t");
  b.barrier();
  (void)b.take();
  EXPECT_THROW((void)b.take(), CheckError);
}

TEST(Builder, ComputeRequiresTaskName) {
  ProgramBuilder b("t");
  KernelSpec k;  // no task
  EXPECT_THROW(b.compute(std::move(k)), CheckError);
}

TEST(Builder, DuplicateProcedureFails) {
  ProgramBuilder b("t");
  b.procedure("p", [] {});
  EXPECT_THROW(b.procedure("p", [] {}), CheckError);
}

TEST(Builder, NestedProcedureDefinitionFails) {
  ProgramBuilder b("t");
  EXPECT_THROW(
      b.for_loop("i", I(1), I(2), [&](Expr) { b.procedure("p", [] {}); }),
      CheckError);
}

TEST(Builder, StatementsLandInTheActiveScope) {
  ProgramBuilder b("t");
  b.barrier();  // top level
  b.for_loop("i", I(1), I(3), [&](Expr) {
    b.barrier();  // loop body
  });
  Program p = b.take();
  ASSERT_EQ(p.main().size(), 2u);
  EXPECT_EQ(p.main()[0]->kind, StmtKind::kBarrier);
  ASSERT_EQ(p.main()[1]->kind, StmtKind::kFor);
  ASSERT_EQ(p.main()[1]->body.size(), 1u);
  EXPECT_EQ(p.main()[1]->body[0]->kind, StmtKind::kBarrier);
}

TEST(Program, KindNamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (int k = 0; k <= static_cast<int>(StmtKind::kCall); ++k) {
    names.insert(stmt_kind_name(static_cast<StmtKind>(k)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(StmtKind::kCall) + 1);
}

}  // namespace
}  // namespace stgsim::ir
