// Property-based tests: randomly generated message-passing programs are
// pushed through the whole pipeline, asserting the system-level
// invariants of DESIGN.md §6 on every one:
//   * the compiler accepts the program and its outputs validate;
//   * the simplified program performs identical communication;
//   * simulation is deterministic across repeated runs;
//   * the threaded conservative scheduler agrees with the sequential one.
//
// The generator produces ring-topology programs: random scalar dataflow,
// random (possibly nested) loops and branches, kernels with random affine
// scaling functions, neighbour sends/receives and global reductions. All
// rank-variant values are kept out of message sizes so the programs are
// communication-correct by construction.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "ir/builder.hpp"
#include "testutil.hpp"

namespace stgsim {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed)
      : rng_(seed), b_("random_" + std::to_string(seed)) {}

  ir::Program generate() {
    b_.get_size("P");
    b_.get_rank("myid");
    scalars_ = {"P"};
    Expr n = b_.decl_int("N", I(rng_.next_in(16, 48)));
    scalars_.push_back("N");
    b_.decl_real("acc", Expr::real(1.0));
    for (int a = 0; a < 3; ++a) {
      arrays_.push_back("A" + std::to_string(a));
      b_.decl_array(arrays_.back(), {n * 4});
    }
    emit_block(/*depth=*/0, static_cast<int>(rng_.next_in(3, 6)));
    return b_.take();
  }

 private:
  /// Random non-negative integer expression over rank-invariant scalars.
  Expr random_expr(int depth) {
    if (depth == 0 || rng_.next_below(3) == 0) {
      if (rng_.next_below(2) == 0 && !scalars_.empty()) {
        return Expr::var(
            scalars_[rng_.next_below(scalars_.size())]);
      }
      return I(rng_.next_in(1, 12));
    }
    Expr lhs = random_expr(depth - 1);
    Expr rhs = random_expr(depth - 1);
    switch (rng_.next_below(5)) {
      case 0: return lhs + rhs;
      case 1: return lhs * sym::min(rhs, I(4));
      case 2: return sym::min(lhs, rhs);
      case 3: return sym::max(lhs, rhs);
      default: return sym::ceil_div(lhs, sym::max(rhs, I(1)));
    }
  }

  void emit_block(int depth, int segments) {
    for (int s = 0; s < segments; ++s) {
      switch (rng_.next_below(depth < 2 ? 6 : 4)) {
        case 0: {  // scalar dataflow
          const std::string name = "s" + std::to_string(next_scalar_++);
          b_.decl_int(name, random_expr(2));
          scalars_.push_back(name);
          break;
        }
        case 1: {  // compute kernel with random scaling function
          ir::KernelSpec k;
          k.task = "t" + std::to_string(next_task_++);
          k.iters = random_expr(2);
          k.flops_per_iter = static_cast<double>(rng_.next_in(1, 4));
          k.writes = {arrays_[rng_.next_below(arrays_.size())]};
          b_.compute(std::move(k));
          break;
        }
        case 2: {  // right-shift neighbour exchange (pipeline-safe order)
          const std::string& arr = arrays_[rng_.next_below(arrays_.size())];
          const int tag = static_cast<int>(next_tag_++);
          // Count must be rank-invariant and within bounds: min(e, N).
          Expr count = sym::max(sym::min(random_expr(1), Expr::var("N")), I(1));
          Expr myid = Expr::var("myid");
          Expr P = Expr::var("P");
          b_.if_then(sym::gt(myid, I(0)),
                     [&] { b_.recv(arr, myid - 1, count, I(0), tag); });
          b_.if_then(sym::lt(myid, P - 1),
                     [&] { b_.send(arr, myid + 1, count, I(0), tag); });
          break;
        }
        case 3: {  // global reduction or barrier
          if (rng_.next_below(2) == 0) {
            b_.allreduce_sum("acc");
          } else {
            b_.barrier();
          }
          break;
        }
        case 4: {  // loop (rank-invariant bounds)
          const std::string var = "i" + std::to_string(next_loop_++);
          const auto trip = rng_.next_in(1, 3);
          const int inner = static_cast<int>(rng_.next_in(1, 3));
          // Declarations inside the body are only safely referenceable
          // inside it (the frame is flat, but emitted code must not read
          // scalars whose declaration may not have executed).
          const std::size_t scope = scalars_.size();
          b_.for_loop(var, I(1), I(trip), [&](Expr) {
            scalars_.push_back(var);
            emit_block(depth + 1, inner);
          });
          scalars_.resize(scope);
          break;
        }
        default: {  // branch on rank-invariant condition
          Expr cond = sym::lt(random_expr(1), random_expr(1));
          const int inner = static_cast<int>(rng_.next_in(1, 2));
          const std::size_t scope = scalars_.size();
          b_.if_then_else(cond, [&] { emit_block(depth + 1, inner); },
                          [&] {
                            scalars_.resize(scope);
                            emit_block(depth + 1, inner);
                          });
          scalars_.resize(scope);
          break;
        }
      }
    }
  }

  Rng rng_;
  ir::ProgramBuilder b_;
  std::vector<std::string> scalars_;
  std::vector<std::string> arrays_;
  int next_scalar_ = 0;
  int next_task_ = 0;
  int next_loop_ = 0;
  std::uint64_t next_tag_ = 1;
};

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, CompilePipelineHoldsItsInvariants) {
  const int nprocs = 5;
  const auto machine = harness::ibm_sp_machine();
  ir::Program prog = ProgramGenerator(GetParam()).generate();
  prog.validate();

  // Invariant 1: compilation succeeds and outputs validate.
  core::CompileResult compiled = core::compile(prog);
  compiled.simplified.program.validate();
  compiled.timer_program.validate();

  // Invariant 2: communication-trace equivalence.
  EXPECT_EQ(testutil::am_trace_divergence(prog, nprocs, machine), "")
      << "seed " << GetParam();
}

TEST_P(RandomPrograms, SimulationIsDeterministic) {
  const int nprocs = 4;
  const auto machine = harness::ibm_sp_machine();
  ir::Program prog = ProgramGenerator(GetParam()).generate();
  auto a = testutil::run_traced(prog, nprocs, machine);
  auto b = testutil::run_traced(prog, nprocs, machine);
  EXPECT_EQ(a.result.per_rank_completion, b.result.per_rank_completion);
  EXPECT_EQ(a.trace.diff(b.trace), "");
}

TEST_P(RandomPrograms, ThreadedSchedulerMatchesSequential) {
  const int nprocs = 6;
  ir::Program prog = ProgramGenerator(GetParam()).generate();

  auto run_with_threads = [&](int threads) {
    smpi::World::Options wopts;
    smpi::World world(wopts, nprocs);
    simk::EngineConfig ec;
    ec.num_processes = nprocs;
    if (threads > 0) {
      ec.host_workers = threads;
      ec.use_threads = true;
    }
    simk::Engine engine(ec);
    engine.set_body([&](simk::Process& p) {
      smpi::Comm comm(world, p);
      ir::execute(prog, comm);
    });
    return engine.run().per_rank_completion;
  };

  const auto seq = run_with_threads(0);
  EXPECT_EQ(seq, run_with_threads(2)) << "seed " << GetParam();
  EXPECT_EQ(seq, run_with_threads(3)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace stgsim
