// Tests for the serve subsystem: the versioned wire protocol, the shared
// structured-error envelope, the Executor's in-flight dedup contract (one
// execution, N responders, byte-identical outcomes), concurrent cache
// access, the Service's admission/drain contract, and the HTTP loopback
// path — including the byte-identity of a served campaign report with the
// offline campaign runner's.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/exec.hpp"
#include "campaign/executor.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "harness/config_json.hpp"
#include "harness/digest.hpp"
#include "serve/daemon.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/errors.hpp"
#include "support/json.hpp"

namespace stgsim {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("stgsim-serve-test-" + tag + "-" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string sub(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

/// Cheap resolved spec (sample app, direct execution, milliseconds).
harness::RunSpec tiny_spec(int procs = 2, int work = 1000) {
  json::Value doc = json::Value::parse(R"({
    "app": "sample", "mode": "de", "seed": 7,
    "options": {"iters": "2", "work": ")" +
                                       std::to_string(work) + R"("}
  })");
  doc.set("procs", procs);
  return harness::run_spec_from_json(doc);
}

json::Value tiny_scenario() {
  return json::Value::parse(R"({
    "name": "serve-test",
    "defaults": {"machine": "ibm_sp", "seed": 11},
    "sweeps": [
      {
        "app": "sample",
        "options": {"iters": 2, "work": 1500},
        "procs": [2, 3],
        "mode": ["de"]
      }
    ]
  })");
}

/// Collects every frame a Service emits for one request.
std::vector<json::Value> collect(serve::Service& service,
                                 const serve::Request& req) {
  std::vector<json::Value> frames;
  service.handle(req, [&](const json::Value& f) { frames.push_back(f); });
  return frames;
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(ServeWire, RequestRoundTripsEveryKind) {
  for (const serve::RequestKind kind :
       {serve::RequestKind::kRun, serve::RequestKind::kCampaign,
        serve::RequestKind::kStatus, serve::RequestKind::kMetrics,
        serve::RequestKind::kShutdown}) {
    serve::Request req;
    req.kind = kind;
    req.client = "roundtrip";
    req.stream = true;
    req.retry_failed = true;
    if (kind == serve::RequestKind::kRun ||
        kind == serve::RequestKind::kCampaign) {
      req.payload = json::Value::object();
      req.payload.set("app", "sample");
    }
    const serve::Request back =
        serve::request_from_json(serve::request_to_json(req));
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.client, "roundtrip");
    EXPECT_TRUE(back.stream);
    EXPECT_TRUE(back.retry_failed);
    EXPECT_EQ(serve::request_to_json(back).dump(),
              serve::request_to_json(req).dump());
  }
}

TEST(ServeWire, RejectsUnknownProtoStructurally) {
  json::Value doc = json::Value::object();
  doc.set("proto", "stgsim-serve-99");
  doc.set("kind", "status");
  try {
    serve::request_from_json(doc);
    FAIL() << "unknown proto must be rejected";
  } catch (const errors::StructuredError& e) {
    EXPECT_EQ(e.code(), "serve.unsupported_proto");
    EXPECT_EQ(e.category(), errors::kCategoryUsage);
    // The rejection names what IS supported.
    const json::Value& supported = e.detail().at("supported");
    ASSERT_GE(supported.as_array().size(), 1u);
    EXPECT_EQ(supported.as_array().back().as_string(), serve::kServeProto);
  }
}

TEST(ServeWire, RejectsMissingProtoAndUnknownKeys) {
  json::Value no_proto = json::Value::object();
  no_proto.set("kind", "status");
  EXPECT_THROW(serve::request_from_json(no_proto), errors::StructuredError);

  json::Value extra = json::Value::object();
  extra.set("proto", serve::kServeProto);
  extra.set("kind", "status");
  extra.set("wat", 1);
  EXPECT_THROW(serve::request_from_json(extra), errors::StructuredError);
}

TEST(ServeWire, PublishedProtosEndWithCurrent) {
  ASSERT_FALSE(serve::published_protos().empty());
  EXPECT_EQ(serve::published_protos().back(), serve::kServeProto);
  EXPECT_TRUE(serve::proto_supported(serve::kServeProto));
  EXPECT_FALSE(serve::proto_supported("stgsim-serve-99"));
}

// ---------------------------------------------------------------------------
// Structured-error envelope
// ---------------------------------------------------------------------------

TEST(ErrorEnvelope, ShapeAndBytesAreStable) {
  const errors::StructuredError e("serve.queue_full",
                                  errors::kCategoryBudgetExceeded,
                                  "request queue is full");
  const json::Value env = errors::error_envelope(e);
  EXPECT_EQ(env.dump(),
            R"({"error":{"api":"stgsim-error-1","category":"budget_exceeded",)"
            R"("code":"serve.queue_full","message":"request queue is full"}})");
}

TEST(ErrorEnvelope, CategoriesMapToHistoricalExitCodes) {
  EXPECT_EQ(errors::category_exit_code(errors::kCategoryUsage), 1);
  EXPECT_EQ(errors::category_exit_code(errors::kCategoryOutOfMemory), 2);
  EXPECT_EQ(errors::category_exit_code(errors::kCategoryDeadlock), 3);
  EXPECT_EQ(errors::category_exit_code(errors::kCategoryBudgetExceeded), 4);
  EXPECT_EQ(errors::category_exit_code(errors::kCategoryInternalError), 5);
  EXPECT_EQ(errors::category_exit_code(errors::kCategoryDivergence), 6);
  EXPECT_EQ(errors::category_exit_code("never-heard-of-it"), 5);
}

TEST(ErrorEnvelope, DaemonFrameEmbedsIdenticalEnvelopeBody) {
  const errors::StructuredError e("usage.removed_flag", errors::kCategoryUsage,
                                  "--threads was removed; use --workers");
  const json::Value env = errors::error_envelope(e);
  const json::Value f = serve::error_frame(env);
  // The frame's "error" member IS the envelope's inner object, byte for
  // byte — the daemon and --json-errors share one serialization.
  EXPECT_EQ(f.at("error").dump(), env.at("error").dump());
}

// ---------------------------------------------------------------------------
// Executor: in-flight dedup, one execution N responders
// ---------------------------------------------------------------------------

TEST(Executor, ConcurrentIdenticalRunsExecuteOnceAndShareBytes) {
  ScratchDir dir("dedup");
  campaign::Executor::Options eo;
  eo.cache_dir = dir.sub("cache");
  campaign::Executor exec(eo);

  const harness::RunSpec resolved = tiny_spec(2, 4000);
  constexpr int kThreads = 8;
  std::vector<std::string> outcome_bytes(kThreads);
  std::vector<campaign::Executor::Source> sources(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const campaign::Executor::Result r = exec.run_resolved(resolved);
      outcome_bytes[t] = harness::outcome_to_json(r.outcome).dump();
      sources[t] = r.source;
    });
  }
  for (auto& t : pool) t.join();

  const campaign::Executor::Stats st = exec.stats();
  EXPECT_EQ(st.executed, 1u) << "identical in-flight specs must execute once";
  EXPECT_EQ(st.executed + st.cache_hits + st.dedup_joined,
            static_cast<std::uint64_t>(kThreads));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(outcome_bytes[t], outcome_bytes[0])
        << "every responder must receive byte-identical outcomes";
  }
  // The cache now holds the one stored entry; a fresh probe is a hit with
  // the same bytes.
  const campaign::Executor::Result again = exec.run_resolved(resolved);
  EXPECT_EQ(again.source, campaign::Executor::Source::kCacheHit);
  EXPECT_EQ(harness::outcome_to_json(again.outcome).dump(), outcome_bytes[0]);
}

TEST(Executor, CalibrationsDedupAcrossConcurrentCallers) {
  ScratchDir dir("calib");
  campaign::Executor::Options eo;
  eo.cache_dir = dir.sub("cache");
  campaign::Executor exec(eo);

  json::Value doc = json::Value::parse(R"({
    "app": "sample", "mode": "am", "calibrate": 2, "seed": 3,
    "options": {"iters": "2", "work": "2000"}
  })");
  const harness::RunSpec spec = harness::run_spec_from_json(doc);

  constexpr int kThreads = 6;
  std::vector<std::string> tables(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      tables[t] = harness::params_to_json(exec.calibration(spec)).dump();
    });
  }
  for (auto& t : pool) t.join();

  const campaign::Executor::Stats st = exec.stats();
  EXPECT_EQ(st.calibrations_run, 1u);
  EXPECT_EQ(st.calibrations_run + st.calibrations_cached +
                st.calibrations_joined,
            static_cast<std::uint64_t>(kThreads));
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(tables[t], tables[0]);
}

TEST(Executor, PermitPoolBoundsConcurrentExecutions) {
  ScratchDir dir("permits");
  campaign::Executor::Options eo;
  eo.cache_dir = dir.sub("cache");
  eo.max_concurrency = 1;
  campaign::Executor exec(eo);

  // Distinct specs so nothing dedups; with one permit they serialize but
  // all complete.
  std::vector<std::thread> pool;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      const campaign::Executor::Result r =
          exec.run_resolved(tiny_spec(2, 1000 + 17 * t));
      if (r.outcome.ok()) ok.fetch_add(1);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(ok.load(), 4);
  EXPECT_EQ(exec.stats().executed, 4u);
}

// ---------------------------------------------------------------------------
// Concurrent cache access
// ---------------------------------------------------------------------------

TEST(ResultCacheConcurrency, RacingStoresOfOneKeyLeaveAValidEntry) {
  ScratchDir dir("race");
  const campaign::ResultCache cache(dir.sub("cache"));

  // Two workers racing to store the same key (as two daemon processes
  // sharing a cache directory would): atomic tmp+rename means the survivor
  // is one complete, checksum-valid document — never a torn hybrid.
  json::Value a = json::Value::object();
  a.set("outcome", "aaaaaaaa");
  json::Value b = json::Value::object();
  b.set("outcome", "bbbbbbbb");
  constexpr int kRounds = 64;
  std::thread t1([&] {
    for (int i = 0; i < kRounds; ++i) cache.store("00deadbeef00", a);
  });
  std::thread t2([&] {
    for (int i = 0; i < kRounds; ++i) cache.store("00deadbeef00", b);
  });
  t1.join();
  t2.join();

  const auto doc = cache.load("00deadbeef00");
  ASSERT_TRUE(doc.has_value());
  const std::string v = doc->at("outcome").as_string();
  EXPECT_TRUE(v == "aaaaaaaa" || v == "bbbbbbbb") << v;
}

TEST(ResultCacheConcurrency, KillMidRequestResumesByReExecuting) {
  ScratchDir dir("resume");
  campaign::Executor::Options eo;
  eo.cache_dir = dir.sub("cache");

  const harness::RunSpec resolved = tiny_spec(2, 3000);
  const std::string digest = harness::run_spec_digest_hex(resolved);
  std::string first_digest;
  {
    campaign::Executor exec(eo);
    first_digest = harness::run_digest_hex(exec.run_resolved(resolved).outcome);
  }

  // "Kill" between execution and durability: the entry vanishes (the cache
  // file is the only durable state, so a request killed before store left
  // nothing). A new daemon must re-execute and reproduce the same run
  // digest — the bit-identity contract covers simulated results; host
  // wall-clock (sim_host_seconds) is deliberately outside it.
  campaign::ResultCache cache(eo.cache_dir);
  cache.remove(digest);
  {
    campaign::Executor exec(eo);
    const campaign::Executor::Result r = exec.run_resolved(resolved);
    EXPECT_EQ(r.source, campaign::Executor::Source::kExecuted);
    EXPECT_EQ(harness::run_digest_hex(r.outcome), first_digest);
  }

  // A torn entry (killed mid-write without the atomic rename — simulated
  // by truncation) reads as a miss, never an error.
  {
    std::ofstream torn(cache.path_for(digest),
                       std::ios::binary | std::ios::trunc);
    torn << "{\"payload\": {\"outco";
  }
  {
    campaign::Executor exec(eo);
    const campaign::Executor::Result r = exec.run_resolved(resolved);
    EXPECT_EQ(r.source, campaign::Executor::Source::kExecuted);
    EXPECT_EQ(harness::run_digest_hex(r.outcome), first_digest);
  }
  // Once durable, a cache hit replays the stored outcome byte-for-byte.
  {
    campaign::Executor exec(eo);
    const campaign::Executor::Result a = exec.run_resolved(resolved);
    campaign::Executor exec2(eo);
    const campaign::Executor::Result b = exec2.run_resolved(resolved);
    EXPECT_EQ(a.source, campaign::Executor::Source::kCacheHit);
    EXPECT_EQ(b.source, campaign::Executor::Source::kCacheHit);
    EXPECT_EQ(harness::outcome_to_json(a.outcome).dump(),
              harness::outcome_to_json(b.outcome).dump());
  }
}

// ---------------------------------------------------------------------------
// Service: admission, budgets, drain
// ---------------------------------------------------------------------------

serve::Request run_request(const std::string& client) {
  serve::Request req;
  req.kind = serve::RequestKind::kRun;
  req.client = client;
  req.payload = json::Value::parse(R"({
    "app": "sample", "mode": "de", "procs": 2, "seed": 7,
    "options": {"iters": "2", "work": "1000"}
  })");
  return req;
}

/// Holds one streaming request open: the emit callback blocks on its
/// first frame until release() — the request keeps its admission ticket
/// the whole time, giving tests a deterministic "daemon is busy" state.
class HeldRequest {
 public:
  HeldRequest(serve::Service& service, serve::Request req) {
    req.stream = true;  // streaming emits an early frame we can block in
    worker_ = std::thread([this, &service, req = std::move(req)] {
      service.handle(req, [this](const json::Value&) {
        std::unique_lock lk(mu_);
        entered_ = true;
        cv_.notify_all();
        cv_.wait(lk, [this] { return released_; });
      });
    });
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this] { return entered_; });
  }
  void release() {
    {
      std::lock_guard lk(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }
  ~HeldRequest() {
    release();
    worker_.join();
  }

 private:
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(Service, QueueFullRejectionIsStructuredBudgetExceeded) {
  ScratchDir dir("qfull");
  serve::Service::Options so;
  so.cache_dir = dir.sub("cache");
  so.max_active_requests = 1;
  serve::Service service(so);

  HeldRequest busy(service, run_request("alice"));
  const std::vector<json::Value> frames =
      collect(service, run_request("bob"));
  busy.release();

  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].at("event").as_string(), "error");
  EXPECT_EQ(frames[0].at("error").at("code").as_string(), "serve.queue_full");
  EXPECT_EQ(frames[0].at("error").at("category").as_string(),
            errors::kCategoryBudgetExceeded);
}

TEST(Service, PerClientBudgetRejectsOnlyTheGreedyClient) {
  ScratchDir dir("budget");
  serve::Service::Options so;
  so.cache_dir = dir.sub("cache");
  so.max_active_requests = 8;
  so.max_inflight_per_client = 1;
  serve::Service service(so);

  HeldRequest busy(service, run_request("alice"));
  const std::vector<json::Value> rejected =
      collect(service, run_request("alice"));
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].at("error").at("code").as_string(),
            "serve.client_budget");

  // A different client is under its own budget and completes normally.
  const std::vector<json::Value> ok = collect(service, run_request("bob"));
  busy.release();
  ASSERT_FALSE(ok.empty());
  EXPECT_EQ(ok.back().at("event").as_string(), "result");

  // Per-client rejection counters surfaced in service metrics.
  const obs::MetricsSnapshot m = service.metrics_snapshot();
  EXPECT_EQ(m.value("serve.rejections.client.alice"), 1.0);
  EXPECT_EQ(m.value("serve.rejected.client_budget"), 1.0);
}

TEST(Service, DrainRejectsNewWorkAndWaitIdleReturns) {
  ScratchDir dir("drain");
  serve::Service::Options so;
  so.cache_dir = dir.sub("cache");
  serve::Service service(so);

  service.begin_drain();
  EXPECT_TRUE(service.draining());
  const std::vector<json::Value> frames =
      collect(service, run_request("late"));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].at("error").at("code").as_string(), "serve.draining");
  service.wait_idle();  // nothing active: returns immediately

  // Observability bypasses admission even while draining.
  serve::Request status;
  status.kind = serve::RequestKind::kStatus;
  const std::vector<json::Value> sf = collect(service, status);
  ASSERT_EQ(sf.size(), 1u);
  EXPECT_EQ(sf[0].at("event").as_string(), "result");
  EXPECT_TRUE(sf[0].at("status").at("draining").as_bool());
}

TEST(Service, WatchdogClampBoundsRunHostBudget) {
  ScratchDir dir("watchdog");
  serve::Service::Options so;
  so.cache_dir = dir.sub("cache");
  so.max_run_host_seconds = 123.0;
  serve::Service service(so);

  const std::vector<json::Value> frames =
      collect(service, run_request("clamped"));
  ASSERT_FALSE(frames.empty());
  const json::Value& result = frames.back();
  ASSERT_EQ(result.at("event").as_string(), "result");
  // The clamp is visible in the canonical spec echoed back (and therefore
  // in the cache key).
  EXPECT_EQ(result.at("spec").at("max_host_sec").as_number(), 123.0);
}

// ---------------------------------------------------------------------------
// Service: campaign byte-identity with the offline runner
// ---------------------------------------------------------------------------

TEST(Service, ServedCampaignReportMatchesOfflineRunnerByteForByte) {
  ScratchDir dir("byteid");

  serve::Service::Options so;
  so.cache_dir = dir.sub("serve-cache");
  so.jobs = 2;
  serve::Service service(so);
  serve::Request req;
  req.kind = serve::RequestKind::kCampaign;
  req.client = "tester";
  req.payload = tiny_scenario();
  const std::vector<json::Value> frames = collect(service, req);
  ASSERT_FALSE(frames.empty());
  const json::Value& result = frames.back();
  ASSERT_EQ(result.at("event").as_string(), "result") << result.dump();

  campaign::CampaignOptions copts;
  copts.jobs = 2;
  copts.cache_dir = dir.sub("offline-cache");
  const campaign::CampaignResult offline =
      run_campaign(campaign::parse_scenario(tiny_scenario()), copts);

  EXPECT_EQ(result.at("report").dump(2),
            campaign::report_json(offline).dump(2));
  EXPECT_EQ(result.at("report_csv").as_string(),
            campaign::report_csv(offline));
}

TEST(Service, ConcurrentIdenticalCampaignsExecuteEachRunOnce) {
  ScratchDir dir("camp-dedup");
  serve::Service::Options so;
  so.cache_dir = dir.sub("cache");
  so.jobs = 2;
  so.max_active_requests = 8;
  serve::Service service(so);

  constexpr int kClients = 4;
  std::vector<std::string> reports(kClients);
  std::vector<std::thread> pool;
  for (int c = 0; c < kClients; ++c) {
    pool.emplace_back([&, c] {
      serve::Request req;
      req.kind = serve::RequestKind::kCampaign;
      req.client = "client-" + std::to_string(c);
      req.payload = tiny_scenario();
      std::vector<json::Value> frames;
      service.handle(req,
                     [&](const json::Value& f) { frames.push_back(f); });
      ASSERT_FALSE(frames.empty());
      ASSERT_EQ(frames.back().at("event").as_string(), "result");
      reports[c] = frames.back().at("report").dump();
    });
  }
  for (auto& t : pool) t.join();

  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(reports[c], reports[0])
        << "every client must receive byte-identical reports";
  }
  // The scenario has 2 unique runs: across all N concurrent identical
  // campaigns each executes exactly once (the rest are cache hits or
  // in-flight dedup joins) — asserted via the executed-run count.
  const campaign::Executor::Stats st = service.executor().stats();
  EXPECT_EQ(st.executed, 2u);
  EXPECT_GE(st.cache_hits + st.dedup_joined, 2u * (kClients - 1));
}

// ---------------------------------------------------------------------------
// HTTP loopback
// ---------------------------------------------------------------------------

TEST(ServeHttp, LoopbackStatusAndErrorEnvelopeBytes) {
  ScratchDir dir("http");
  serve::Service::Options so;
  so.cache_dir = dir.sub("cache");
  serve::Service service(so);
  serve::HttpServer server;
  serve::HttpServer::Options ho;  // 127.0.0.1, ephemeral port
  const int port = server.start(ho, serve::make_http_handler(service));
  ASSERT_GT(port, 0);

  // Status route.
  const serve::HttpResponse status =
      serve::http_request("127.0.0.1", port, "GET", "/v1/status", "");
  EXPECT_EQ(status.status, 200);
  EXPECT_EQ(json::Value::parse(status.body).at("proto").as_string(),
            serve::kServeProto);

  // An unsupported proto comes back 400 with the bare envelope — the SAME
  // bytes errors::error_envelope produces (daemon/CLI shared surface).
  const std::string bad = R"({"proto":"stgsim-serve-99","kind":"status"})";
  const serve::HttpResponse rejected =
      serve::http_request("127.0.0.1", port, "POST", "/v1/request", bad);
  EXPECT_EQ(rejected.status, 400);
  const json::Value env = json::Value::parse(rejected.body);
  EXPECT_EQ(env.at("error").at("api").as_string(), errors::kErrorApi);
  EXPECT_EQ(env.at("error").at("code").as_string(),
            "serve.unsupported_proto");
  try {
    serve::request_from_json(json::Value::parse(bad));
    FAIL();
  } catch (const errors::StructuredError& e) {
    EXPECT_EQ(rejected.body, errors::error_envelope(e).dump(2) + "\n");
  }

  // Streaming run request over the wire: NDJSON frames, result last.
  serve::Request req = run_request("http-client");
  req.stream = true;
  std::vector<json::Value> frames;
  const int code = serve::http_request_stream(
      "127.0.0.1", port, "POST", "/v1/request",
      serve::request_to_json(req).dump(), [&](const std::string& line) {
        if (!line.empty()) frames.push_back(json::Value::parse(line));
      });
  EXPECT_EQ(code, 200);
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.back().at("event").as_string(), "result");
  EXPECT_EQ(frames.back().at("outcome").at("status").as_string(), "ok");

  // Shutdown route begins the drain.
  const serve::HttpResponse down =
      serve::http_request("127.0.0.1", port, "POST", "/v1/shutdown", "");
  EXPECT_EQ(down.status, 200);
  EXPECT_TRUE(service.shutdown_requested());
  EXPECT_TRUE(service.draining());
  server.stop();
}

}  // namespace
}  // namespace stgsim
