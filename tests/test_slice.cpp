// Unit tests for program slicing (paper §3.2): what must be retained,
// what may be eliminated, and the closure rules that connect them.
#include <gtest/gtest.h>

#include "core/slice.hpp"
#include "ir/builder.hpp"

namespace stgsim::core {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::KernelSpec kernel(const std::string& task, Expr iters,
                      std::vector<std::string> reads,
                      std::vector<std::string> writes) {
  ir::KernelSpec k;
  k.task = task;
  k.iters = std::move(iters);
  k.reads = std::move(reads);
  k.writes = std::move(writes);
  return k;
}

/// Finds the (unique) statement of a kind, by declared name.
const ir::Stmt* find_stmt(const ir::Program& p, ir::StmtKind kind,
                          const std::string& name = "") {
  const ir::Stmt* found = nullptr;
  ir::for_each_stmt(p, [&](const ir::Stmt& s) {
    if (s.kind == kind && (name.empty() || s.name == name)) found = &s;
  });
  return found;
}

TEST(Slice, CommunicationStatementsAlwaysRetained) {
  ir::ProgramBuilder b("t");
  Expr myid = b.get_rank("myid");
  Expr P = b.get_size("P");
  b.decl_array("A", {I(100)});
  b.if_then(sym::lt(myid, P - 1),
            [&] { b.send("A", myid + 1, I(10), I(0), 0); });
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);
  EXPECT_TRUE(slice.is_retained(*find_stmt(p, ir::StmtKind::kSend)));
  EXPECT_TRUE(slice.is_retained(*find_stmt(p, ir::StmtKind::kIf)));
  EXPECT_TRUE(slice.needed_vars.contains("myid"));
  EXPECT_TRUE(slice.needed_vars.contains("P"));
}

TEST(Slice, PayloadOnlyComputationIsEliminated) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  b.decl_array("A", {I(100)});
  b.compute(kernel("fill", I(100), {}, {"A"}));
  b.send("A", I(0), I(10), I(0), 0);
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);
  EXPECT_FALSE(slice.is_retained(*find_stmt(p, ir::StmtKind::kCompute)));
  EXPECT_FALSE(slice.array_is_live("A"));
}

TEST(Slice, MessageSizeDependenciesAreRetained) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  Expr P = b.get_size("P");
  Expr n = b.decl_int("n", I(64));
  Expr m = b.decl_int("m", n * 2);     // feeds the count
  b.decl_int("junk", n * 3);           // feeds nothing
  b.decl_array("A", {m});
  b.send("A", I(0), m, I(0), 0);
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);
  EXPECT_TRUE(slice.needed_vars.contains("m"));
  EXPECT_TRUE(slice.needed_vars.contains("n"));  // transitively
  EXPECT_FALSE(slice.needed_vars.contains("junk"));
  EXPECT_FALSE(slice.is_retained(
      *find_stmt(p, ir::StmtKind::kDeclScalar, "junk")));
}

TEST(Slice, ScalingFunctionVariablesAreNeeded) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  Expr n = b.decl_int("n", I(64));
  Expr blk = b.decl_int("blk", sym::ceil_div(n, Expr::var("P")));
  b.decl_array("A", {I(16)});
  b.compute(kernel("work", (n - 2) * blk, {}, {"A"}));
  b.barrier();  // some communication so the program has structure
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);
  // The kernel itself is eliminated, but the variables in its scaling
  // function must survive for the delay expression.
  EXPECT_FALSE(slice.is_retained(*find_stmt(p, ir::StmtKind::kCompute)));
  EXPECT_TRUE(slice.needed_vars.contains("n"));
  EXPECT_TRUE(slice.needed_vars.contains("blk"));
}

TEST(Slice, EliminatedLoopVariableIsNotNeededButBoundsAre) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  Expr n = b.decl_int("n", I(8));
  b.decl_array("A", {I(16)});
  b.for_loop("i", I(1), n, [&](Expr i) {
    b.compute(kernel("tri", i * 10, {}, {"A"}));
  });
  b.barrier();
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);
  EXPECT_FALSE(slice.is_retained(*find_stmt(p, ir::StmtKind::kFor)));
  EXPECT_FALSE(slice.needed_vars.contains("i"));  // bound by the sum
  EXPECT_TRUE(slice.needed_vars.contains("n"));   // loop bound survives
}

TEST(Slice, LoopWithCommunicationIsRetainedWithItsVariables) {
  ir::ProgramBuilder b("t");
  Expr myid = b.get_rank("myid");
  Expr P = b.get_size("P");
  Expr steps = b.decl_int("steps", I(5));
  b.decl_array("A", {I(64)});
  b.for_loop("t", I(1), steps, [&](Expr) {
    b.if_then(sym::gt(myid, I(0)),
              [&] { b.send("A", myid - 1, I(8), I(0), 0); });
  });
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);
  EXPECT_TRUE(slice.is_retained(*find_stmt(p, ir::StmtKind::kFor)));
  EXPECT_TRUE(slice.needed_vars.contains("steps"));
}

TEST(Slice, ControlDependentValueRetainsItsProducers) {
  // A computed value reaching a retained branch pulls in the kernel that
  // computes it AND the arrays that kernel reads (paper §3.2: retained
  // subsets of computation and data).
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  b.decl_real("resid", Expr::real(1.0));
  b.decl_int("stop", I(0));
  b.decl_array("U", {I(128)});
  b.compute(kernel("mkdata", I(128), {}, {"U"}));
  b.compute(kernel("residual", I(128), {"U"}, {"resid"}));
  b.allreduce_sum("resid");
  b.if_then(sym::lt(Expr::var("resid"), Expr::real(1e-6)), [&] {
    b.assign("stop", I(1));
  });
  b.if_then(sym::eq(Expr::var("stop"), I(0)), [&] { b.barrier(); });
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);
  EXPECT_TRUE(slice.needed_vars.contains("resid"));
  EXPECT_TRUE(slice.array_is_live("U"));
  std::size_t retained_kernels = 0;
  ir::for_each_stmt(p, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kCompute && slice.is_retained(s)) {
      ++retained_kernels;
    }
  });
  EXPECT_EQ(retained_kernels, 2u);  // residual AND its data producer
}

TEST(Slice, ReductionPayloadScalarKeepsDeclOnly) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  b.decl_real("rmax", Expr::real(0.0));
  b.decl_array("R", {I(64)});
  b.compute(kernel("reduce_local", I(64), {"R"}, {"rmax"}));
  b.allreduce_max("rmax");  // value never used structurally
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);
  EXPECT_TRUE(slice.is_retained(
      *find_stmt(p, ir::StmtKind::kDeclScalar, "rmax")));
  EXPECT_FALSE(slice.is_retained(*find_stmt(p, ir::StmtKind::kCompute)));
  EXPECT_FALSE(slice.array_is_live("R"));
}

TEST(Slice, InterproceduralCommRetainsCallSites) {
  ir::ProgramBuilder b("t");
  Expr myid = b.get_rank("myid");
  b.get_size("P");
  b.decl_array("A", {I(64)});
  b.procedure("exchange", [&] {
    b.if_then(sym::gt(myid, I(0)),
              [&] { b.send("A", myid - 1, I(8), I(0), 0); });
  });
  b.procedure("pure_compute", [&] {
    b.compute(kernel("noop", I(10), {}, {"A"}));
  });
  b.for_loop("t", I(1), I(3), [&](Expr) {
    b.call("exchange");
    b.call("pure_compute");
  });
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);

  std::size_t retained_calls = 0, total_calls = 0;
  ir::for_each_stmt(p, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kCall) {
      ++total_calls;
      if (slice.is_retained(s)) ++retained_calls;
    }
  });
  EXPECT_EQ(total_calls, 2u);
  EXPECT_EQ(retained_calls, 1u);  // only the communicating procedure
}

TEST(Slice, RetainAllBranchesOptionKeepsConditions) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  Expr flag = b.decl_int("flag", I(1));
  b.decl_array("A", {I(64)});
  b.if_then(sym::eq(flag, I(1)),
            [&] { b.compute(kernel("k", I(50), {}, {"A"})); });
  b.barrier();
  ir::Program p = b.take();

  SliceResult lax = compute_slice(p);
  EXPECT_FALSE(lax.is_retained(*find_stmt(p, ir::StmtKind::kIf)));
  EXPECT_FALSE(lax.needed_vars.contains("flag"));

  SliceOptions opts;
  opts.retain_all_branches = true;
  SliceResult strict = compute_slice(p, opts);
  EXPECT_TRUE(strict.is_retained(*find_stmt(p, ir::StmtKind::kIf)));
  EXPECT_TRUE(strict.needed_vars.contains("flag"));
}

TEST(Slice, DirectiveRetainsOnlyTheNamedBranch) {
  ir::ProgramBuilder b("t");
  b.get_rank("myid");
  b.get_size("P");
  Expr f1 = b.decl_int("f1", I(1));
  Expr f2 = b.decl_int("f2", I(0));
  b.decl_array("A", {I(64)});
  b.if_then(sym::eq(f1, I(1)),
            [&] { b.compute(kernel("k1", I(10), {}, {"A"})); });
  b.if_then(sym::eq(f2, I(1)),
            [&] { b.compute(kernel("k2", I(10), {}, {"A"})); });
  b.barrier();
  ir::Program p = b.take();

  // Find the first branch's id.
  int first_if = -1;
  ir::for_each_stmt(p, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kIf && first_if == -1) first_if = s.id;
  });
  ASSERT_NE(first_if, -1);

  SliceOptions opts;
  opts.retained_branch_ids = {first_if};
  SliceResult slice = compute_slice(p, opts);

  std::size_t retained_ifs = 0;
  ir::for_each_stmt(p, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kIf && slice.is_retained(s)) ++retained_ifs;
  });
  EXPECT_EQ(retained_ifs, 1u);
  EXPECT_TRUE(slice.needed_vars.contains("f1"));
  EXPECT_FALSE(slice.needed_vars.contains("f2"));
}

TEST(Slice, VariableRedefinedInsideEliminatedRegionPullsItIn) {
  // A message size modified inside a loop forces the defining assignment
  // (and therefore the loop) into the slice.
  ir::ProgramBuilder b("t");
  Expr myid = b.get_rank("myid");
  Expr P = b.get_size("P");
  Expr sz = b.decl_int("sz", I(4));
  b.decl_array("A", {I(1024)});
  b.for_loop("t", I(1), I(3), [&](Expr) {
    b.assign("sz", sz * 2);
    b.compute(kernel("k", I(10), {}, {"A"}));
  });
  b.if_then(sym::lt(myid, P - 1),
            [&] { b.send("A", myid + 1, sz, I(0), 0); });
  ir::Program p = b.take();
  SliceResult slice = compute_slice(p);
  EXPECT_TRUE(slice.needed_vars.contains("sz"));
  EXPECT_TRUE(slice.is_retained(*find_stmt(p, ir::StmtKind::kAssign, "sz")));
  EXPECT_TRUE(slice.is_retained(*find_stmt(p, ir::StmtKind::kFor)));
  // The kernel inside the now-retained loop is still eliminable.
  EXPECT_FALSE(slice.is_retained(*find_stmt(p, ir::StmtKind::kCompute)));
}

}  // namespace
}  // namespace stgsim::core
