// Unit tests for the simulated MPI layer: protocol semantics (eager vs
// rendezvous), nonblocking operations, collectives, statistics and the
// communication trace.
#include <gtest/gtest.h>

#include "ir/interp.hpp"
#include "smpi/smpi.hpp"

namespace stgsim::smpi {
namespace {

struct Fixture {
  explicit Fixture(int nprocs, World::Options opts = {})
      : world(opts, nprocs) {
    ec.num_processes = nprocs;
  }

  simk::RunResult run(std::function<void(Comm&)> body) {
    simk::Engine engine(ec);
    engine.set_body([&](simk::Process& p) {
      Comm comm(world, p);
      body(comm);
    });
    return engine.run();
  }

  World world;
  simk::EngineConfig ec;
};

TEST(Smpi, EagerSendCompletesWithoutReceiver) {
  Fixture f(2);
  f.run([&](Comm& c) {
    if (c.rank() == 0) {
      double x = 1.0;
      c.send(1, 0, &x, sizeof x);  // far below the eager threshold
      // Sender only paid its send overhead — it never waited for rank 1,
      // which in this test does not even post a receive.
      EXPECT_EQ(c.now(), f.world.options().net.send_overhead);
    }
  });
}

TEST(Smpi, PayloadIsTransferredFaithfully) {
  Fixture f(2);
  f.run([](Comm& c) {
    double buf[4] = {1.5, 2.5, 3.5, 4.5};
    if (c.rank() == 0) {
      c.send(1, 3, buf, sizeof buf);
    } else {
      double out[4] = {};
      RecvStatus st;
      c.recv(0, 3, out, sizeof out, &st);
      EXPECT_EQ(st.src, 0);
      EXPECT_EQ(st.tag, 3);
      EXPECT_EQ(st.bytes, sizeof buf);
      for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out[i], buf[i]);
    }
  });
}

TEST(Smpi, RendezvousSendBlocksUntilReceivePosted) {
  Fixture f(2);
  const std::size_t big =
      f.world.options().net.eager_threshold + 1024;  // forces rendezvous
  std::vector<std::uint8_t> data(big, 0xab);
  f.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 0, data.data(), data.size());
      // The receiver posts its recv at t=1ms; a rendezvous send cannot
      // have completed before the CTS round trip from that post.
      EXPECT_GT(c.now(), vtime_from_ms(1));
    } else {
      c.delay(vtime_from_ms(1));
      std::vector<std::uint8_t> out(big);
      c.recv(0, 0, out.data(), out.size());
      EXPECT_EQ(out[big / 2], 0xab);
    }
  });
}

TEST(Smpi, RendezvousCostsMoreThanEagerForSameBytes) {
  // Same byte count just below vs just above the threshold: the
  // rendezvous handshake must add latency to the receiver's completion.
  auto completion = [](std::size_t bytes) {
    World::Options opts;
    Fixture f(2, opts);
    VTime done = 0;
    f.run([&](Comm& c) {
      std::vector<std::uint8_t> buf(bytes);
      if (c.rank() == 0) {
        c.send(1, 0, buf.data(), bytes);
      } else {
        c.recv(0, 0, buf.data(), bytes);
        done = c.now();
      }
    });
    return done;
  };
  World::Options opts;
  const std::size_t thr = opts.net.eager_threshold;
  EXPECT_GT(completion(thr + 1), completion(thr - 1));
}

TEST(Smpi, NonOvertakingSameTag) {
  Fixture f(2);
  f.run([](Comm& c) {
    if (c.rank() == 0) {
      double a = 1.0, b = 2.0;
      c.send(1, 0, &a, sizeof a);
      c.send(1, 0, &b, sizeof b);
    } else {
      double x = 0.0;
      c.recv(0, 0, &x, sizeof x);
      EXPECT_DOUBLE_EQ(x, 1.0);
      c.recv(0, 0, &x, sizeof x);
      EXPECT_DOUBLE_EQ(x, 2.0);
    }
  });
}

TEST(Smpi, AnySourceAndAnyTagReceive) {
  Fixture f(3);
  f.run([](Comm& c) {
    double x = static_cast<double>(c.rank());
    if (c.rank() != 2) {
      c.send(2, 10 + c.rank(), &x, sizeof x);
    } else {
      double out = -1.0;
      RecvStatus st;
      c.recv(kAnySource, kAnyTag, &out, sizeof out, &st);
      EXPECT_DOUBLE_EQ(out, static_cast<double>(st.src));
      c.recv(kAnySource, kAnyTag, &out, sizeof out, &st);
      EXPECT_DOUBLE_EQ(out, static_cast<double>(st.src));
    }
  });
}

TEST(Smpi, IsendIrecvWaitall) {
  Fixture f(2);
  f.run([](Comm& c) {
    const int peer = 1 - c.rank();
    double out = -1.0;
    double in = static_cast<double>(c.rank());
    std::vector<Request> reqs;
    reqs.push_back(c.irecv(peer, 0, &out, sizeof out));
    reqs.push_back(c.isend(peer, 0, &in, sizeof in));
    c.waitall(reqs);
    EXPECT_DOUBLE_EQ(out, static_cast<double>(peer));
  });
}

TEST(Smpi, SymmetricRendezvousExchangeDoesNotDeadlock) {
  // Both ranks isend a large message then waitall with the recv — the
  // progress-engine case §waitall handles by servicing receives first.
  Fixture f(2);
  const std::size_t big = f.world.options().net.eager_threshold * 2;
  f.run([&](Comm& c) {
    const int peer = 1 - c.rank();
    std::vector<std::uint8_t> in(big, static_cast<std::uint8_t>(c.rank()));
    std::vector<std::uint8_t> out(big, 0xff);
    std::vector<Request> reqs;
    reqs.push_back(c.isend(peer, 0, in.data(), big));
    reqs.push_back(c.irecv(peer, 0, out.data(), big));
    c.waitall(reqs);
    EXPECT_EQ(out[0], static_cast<std::uint8_t>(peer));
  });
}

TEST(Smpi, WaitanyReturnsTheReadyRequest) {
  Fixture f(3);
  f.run([](Comm& c) {
    if (c.rank() == 2) {
      // Two outstanding receives; sources answer in a known virtual order.
      double a = 0.0, b = 0.0;
      std::vector<Request> reqs;
      reqs.push_back(c.irecv(0, 1, &a, sizeof a));
      reqs.push_back(c.irecv(1, 2, &b, sizeof b));
      const std::size_t first = c.waitany(reqs);
      EXPECT_EQ(first, 1u);  // rank 1 sends immediately; rank 0 delays
      const std::size_t second = c.waitany(reqs);
      EXPECT_EQ(second, 0u);
      EXPECT_DOUBLE_EQ(a, 10.0);
      EXPECT_DOUBLE_EQ(b, 20.0);
    } else if (c.rank() == 1) {
      double v = 20.0;
      c.send(2, 2, &v, sizeof v);
    } else {
      c.delay(vtime_from_ms(5));
      double v = 10.0;
      c.send(2, 1, &v, sizeof v);
    }
  });
}

TEST(Smpi, WaitanyCompletesRendezvousSends) {
  Fixture f(2);
  const std::size_t big = f.world.options().net.eager_threshold * 2;
  f.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> buf(big, 1);
      std::vector<Request> reqs;
      reqs.push_back(c.isend(1, 0, buf.data(), big));
      const std::size_t idx = c.waitany(reqs);
      EXPECT_EQ(idx, 0u);
      EXPECT_TRUE(reqs[0].done());
    } else {
      std::vector<std::uint8_t> buf(big);
      c.recv(0, 0, buf.data(), big);
    }
  });
}

TEST(Smpi, WaitanyWithNothingPendingIsAnError) {
  Fixture f(1);
  EXPECT_THROW(f.run([](Comm& c) {
                 std::vector<Request> reqs;
                 reqs.push_back(Request{});
                 c.waitany(reqs);
               }),
               CheckError);
}

TEST(Smpi, GatherCollectsRankMajorBlocks) {
  const int n = 5;
  Fixture f(n);
  f.run([n](Comm& c) {
    double mine[2] = {static_cast<double>(c.rank()),
                      static_cast<double>(c.rank() * 10)};
    std::vector<double> all(static_cast<std::size_t>(2 * n), -1.0);
    c.gather(mine, sizeof mine, c.rank() == 2 ? all.data() : nullptr, 2);
    if (c.rank() == 2) {
      for (int r = 0; r < n; ++r) {
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10);
      }
    }
  });
}

TEST(Smpi, ScatterDistributesRankMajorBlocks) {
  const int n = 4;
  Fixture f(n);
  f.run([n](Comm& c) {
    std::vector<double> all;
    if (c.rank() == 0) {
      for (int r = 0; r < n; ++r) all.push_back(100.0 + r);
    }
    double mine = -1.0;
    c.scatter(c.rank() == 0 ? all.data() : nullptr, sizeof mine, &mine, 0);
    EXPECT_DOUBLE_EQ(mine, 100.0 + c.rank());
  });
}

TEST(Smpi, GatherThenScatterRoundTrips) {
  const int n = 6;
  Fixture f(n);
  f.run([n](Comm& c) {
    double v = static_cast<double>(c.rank() * 7);
    std::vector<double> all(static_cast<std::size_t>(n));
    c.gather(&v, sizeof v, c.rank() == 0 ? all.data() : nullptr, 0);
    double back = -1.0;
    c.scatter(c.rank() == 0 ? all.data() : nullptr, sizeof back, &back, 0);
    EXPECT_DOUBLE_EQ(back, v);
  });
}

TEST(Smpi, SendrecvExchangesBothWays) {
  Fixture f(4);
  f.run([](Comm& c) {
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() + c.size() - 1) % c.size();
    double out = -1.0;
    double in = static_cast<double>(c.rank());
    c.sendrecv(right, 1, &in, sizeof in, left, 1, &out, sizeof out);
    EXPECT_DOUBLE_EQ(out, static_cast<double>(left));
  });
}

TEST(Smpi, RecvBufferTooSmallIsAnError) {
  // A structured TargetProgramError (not a CheckError with its simulator
  // check banner): the harness maps it to RunStatus::kInternalError.
  Fixture f(2);
  try {
    f.run([](Comm& c) {
      double big[4] = {1, 2, 3, 4};
      if (c.rank() == 0) {
        c.send(1, 0, big, sizeof big);
      } else {
        double small = 0;
        c.recv(0, 0, &small, sizeof small);
      }
    });
    FAIL() << "expected TargetProgramError";
  } catch (const TargetProgramError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("buffer too small"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BcastDeliversRootValueToAll) {
  Fixture f(GetParam());
  f.run([](Comm& c) {
    double buf[3] = {0, 0, 0};
    if (c.rank() == 2 % c.size()) {
      buf[0] = 42.0;
      buf[1] = 43.0;
      buf[2] = 44.0;
    }
    c.bcast(buf, sizeof buf, 2 % c.size());
    EXPECT_DOUBLE_EQ(buf[0], 42.0);
    EXPECT_DOUBLE_EQ(buf[2], 44.0);
  });
}

TEST_P(CollectiveSizes, ReduceSumAccumulatesAtRoot) {
  const int n = GetParam();
  Fixture f(n);
  f.run([n](Comm& c) {
    double v[2] = {static_cast<double>(c.rank()), 1.0};
    c.reduce_sum(v, 2, 0);
    if (c.rank() == 0) {
      EXPECT_DOUBLE_EQ(v[0], n * (n - 1) / 2.0);
      EXPECT_DOUBLE_EQ(v[1], static_cast<double>(n));
    }
  });
}

TEST_P(CollectiveSizes, AllreduceSumAgreesEverywhere) {
  const int n = GetParam();
  Fixture f(n);
  f.run([n](Comm& c) {
    const double total = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(total, n * (n + 1) / 2.0);
  });
}

TEST_P(CollectiveSizes, AllreduceMaxAgreesEverywhere) {
  const int n = GetParam();
  Fixture f(n);
  f.run([n](Comm& c) {
    double v = static_cast<double>(c.rank());
    c.allreduce_max(&v, 1);
    EXPECT_DOUBLE_EQ(v, static_cast<double>(n - 1));
  });
}

TEST_P(CollectiveSizes, BarrierSynchronizesClocks) {
  const int n = GetParam();
  Fixture f(n);
  f.run([](Comm& c) {
    // Stagger arrival; after the barrier nobody can be earlier than the
    // latest pre-barrier time.
    const VTime mine = vtime_from_us(10 * (c.rank() + 1));
    c.delay(mine);
    const VTime latest = vtime_from_us(10 * c.size());
    c.barrier();
    EXPECT_GE(c.now(), latest);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

TEST(Smpi, LinearCollectivesProduceSameValues) {
  World::Options opts;
  opts.linear_collectives = true;
  Fixture f(7, opts);
  f.run([](Comm& c) {
    double v = static_cast<double>(c.rank() + 1);
    c.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 28.0);
    double buf = c.rank() == 3 ? 9.0 : 0.0;
    c.bcast(&buf, sizeof buf, 3);
    EXPECT_DOUBLE_EQ(buf, 9.0);
    c.barrier();
  });
}

TEST(Smpi, TreeBeatsLinearAtScale) {
  auto barrier_time = [](bool linear, int procs) {
    World::Options opts;
    opts.linear_collectives = linear;
    Fixture f(procs, opts);
    VTime t = 0;
    f.run([&](Comm& c) {
      c.barrier();
      if (c.rank() == 0) t = c.now();
    });
    return t;
  };
  EXPECT_LT(barrier_time(false, 64), barrier_time(true, 64));
}

// ---------------------------------------------------------------------------
// delay / read_param / stats / trace
// ---------------------------------------------------------------------------

TEST(Smpi, DelayAdvancesClockAndCountsAsCompute) {
  Fixture f(1);
  f.run([&](Comm& c) {
    c.delay(vtime_from_ms(2));
    EXPECT_EQ(c.now(), vtime_from_ms(2));
  });
  EXPECT_EQ(f.world.stats(0).compute_time, vtime_from_ms(2));
  EXPECT_EQ(f.world.stats(0).delays, 1u);
}

TEST(Smpi, NegativeDelayIsRejected) {
  Fixture f(1);
  EXPECT_THROW(f.run([](Comm& c) { c.delay(-1); }), CheckError);
}

TEST(Smpi, ReadParamBroadcastsTheTableValue) {
  Fixture f(5);
  f.world.set_param("w_foo", 3.25e-6);
  f.run([](Comm& c) {
    EXPECT_DOUBLE_EQ(c.read_param("w_foo"), 3.25e-6);
    // Collective: everyone pays at least the wire latency from rank 0.
    if (c.rank() != 0) {
      EXPECT_GT(c.now(), 0);
    }
  });
}

TEST(Smpi, MissingParamFailsWithHelpfulError) {
  Fixture f(1);
  try {
    f.run([](Comm& c) { c.read_param("w_nope"); });
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("w_nope"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("timer"), std::string::npos);
  }
}

TEST(Smpi, StatsCountOperations) {
  Fixture f(2);
  f.run([](Comm& c) {
    double x = 0;
    if (c.rank() == 0) {
      c.send(1, 0, &x, sizeof x);
      c.send(1, 0, &x, sizeof x);
    } else {
      c.recv(0, 0, &x, sizeof x);
      c.recv(0, 0, &x, sizeof x);
    }
    c.barrier();
  });
  EXPECT_EQ(f.world.stats(0).sends, 2u);
  EXPECT_EQ(f.world.stats(0).bytes_sent, 2 * sizeof(double));
  EXPECT_EQ(f.world.stats(1).recvs, 2u);
  EXPECT_EQ(f.world.stats(0).collectives, 1u);
  EXPECT_EQ(f.world.stats(1).collectives, 1u);
}

TEST(Smpi, CommTraceRecordsUserLevelOps) {
  CommTrace trace(2);
  World::Options opts;
  opts.trace = &trace;
  Fixture f(2, opts);
  f.run([](Comm& c) {
    double x = 0;
    if (c.rank() == 0) {
      c.send(1, 7, &x, sizeof x);
    } else {
      c.recv(0, 7, &x, sizeof x);
    }
    c.barrier();
  });
  const auto& r0 = trace.per_rank()[0];
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0].kind, CommEvent::Kind::kSend);
  EXPECT_EQ(r0[0].peer, 1);
  EXPECT_EQ(r0[0].tag, 7);
  EXPECT_EQ(r0[0].bytes, sizeof(double));
  EXPECT_EQ(r0[1].kind, CommEvent::Kind::kBarrier);
}

TEST(Smpi, CommTraceDiffPinpointsDivergence) {
  CommTrace a(1), b(1);
  a.add(0, {CommEvent::Kind::kSend, 1, 0, 8});
  b.add(0, {CommEvent::Kind::kSend, 1, 0, 16});
  EXPECT_EQ(a.diff(a), "");
  const std::string d = a.diff(b);
  EXPECT_NE(d.find("rank 0"), std::string::npos);
  EXPECT_NE(d.find("8/16"), std::string::npos);
}

}  // namespace
}  // namespace stgsim::smpi
