// Unit tests for static task graph synthesis (paper §2.2): node kinds,
// process-set guards, symbolic communication mappings and DOT export.
#include <gtest/gtest.h>

#include "core/stg.hpp"
#include "ir/builder.hpp"

namespace stgsim::core {
namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::Program make_sample_program() {
  ir::ProgramBuilder b("stg_sample");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");
  Expr n = b.decl_int("n", I(64));
  b.decl_array("A", {n});

  ir::KernelSpec k;
  k.task = "work";
  k.iters = n * 2;
  k.flops_per_iter = 3.0;
  k.writes = {"A"};
  b.compute(std::move(k));

  b.if_then(sym::gt(myid, I(0)),
            [&] { b.send("A", myid - 1, n - 2, I(0), 4); });
  b.if_then(sym::lt(myid, P - 1),
            [&] { b.recv("A", myid + 1, n - 2, I(0), 4); });

  b.for_loop("t", I(1), I(3), [&](Expr) { b.barrier(); });
  return b.take();
}

TEST(Stg, NodeCountsByKind) {
  Stg stg = synthesize_stg(make_sample_program());
  EXPECT_EQ(stg.count(StgNodeKind::kCompute), 1u);
  EXPECT_EQ(stg.count(StgNodeKind::kComm), 3u);  // send, recv, barrier
  EXPECT_EQ(stg.count(StgNodeKind::kControl), 1u);  // the t-loop
}

TEST(Stg, RankBranchesBecomeProcessSetGuards) {
  Stg stg = synthesize_stg(make_sample_program());
  const StgNode* send = nullptr;
  for (const auto& n : stg.nodes) {
    if (n.kind == StgNodeKind::kComm && n.comm_kind == ir::StmtKind::kSend) {
      send = &n;
    }
  }
  ASSERT_NE(send, nullptr);
  // Guard is myid > 0: process 0 excluded, others included.
  sym::MapEnv env;
  env.set("P", sym::Value(std::int64_t{4}));
  env.set("myid", sym::Value(std::int64_t{0}));
  EXPECT_FALSE(send->guard.eval(env).as_bool());
  env.set("myid", sym::Value(std::int64_t{2}));
  EXPECT_TRUE(send->guard.eval(env).as_bool());
}

TEST(Stg, CommEdgePairsSendRecvByTagWithMapping) {
  Stg stg = synthesize_stg(make_sample_program());
  ASSERT_EQ(stg.comm_edges.size(), 1u);
  const StgCommEdge& e = stg.comm_edges[0];
  EXPECT_EQ(e.tag, 4);
  sym::MapEnv env;
  env.set("myid", sym::Value(std::int64_t{5}));
  EXPECT_EQ(e.mapping.eval_int(env), 4);  // q = p - 1
}

TEST(Stg, CommNodeCarriesSymbolicByteSize) {
  Stg stg = synthesize_stg(make_sample_program());
  for (const auto& n : stg.nodes) {
    if (n.kind == StgNodeKind::kComm && n.comm_kind == ir::StmtKind::kSend) {
      sym::MapEnv env;
      env.set("n", sym::Value(std::int64_t{64}));
      EXPECT_EQ(n.size_bytes.eval_int(env), (64 - 2) * 8);
    }
  }
}

TEST(Stg, ComputeNodeCarriesScalingFunction) {
  Stg stg = synthesize_stg(make_sample_program());
  for (const auto& n : stg.nodes) {
    if (n.kind != StgNodeKind::kCompute) continue;
    EXPECT_EQ(n.task, "work");
    sym::MapEnv env;
    env.set("n", sym::Value(std::int64_t{10}));
    EXPECT_EQ(n.scaling.eval_int(env), 20);
  }
}

TEST(Stg, LoopNodeNestsItsChildren) {
  Stg stg = synthesize_stg(make_sample_program());
  for (const auto& n : stg.nodes) {
    if (n.kind == StgNodeKind::kControl) {
      EXPECT_TRUE(n.is_loop);
      EXPECT_EQ(n.loop_var, "t");
      ASSERT_EQ(n.children.size(), 1u);
      EXPECT_EQ(stg.nodes[static_cast<std::size_t>(n.children[0])].comm_kind,
                ir::StmtKind::kBarrier);
    }
  }
}

TEST(Stg, NodeForStmtFindsSourceMarkers) {
  ir::Program p = make_sample_program();
  Stg stg = synthesize_stg(p);
  ir::for_each_stmt(p, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kCompute) {
      const StgNode* node = stg.node_for_stmt(s.id);
      ASSERT_NE(node, nullptr);
      EXPECT_EQ(node->kind, StgNodeKind::kCompute);
    }
  });
  EXPECT_EQ(stg.node_for_stmt(999999), nullptr);
}

TEST(Stg, ProceduresAreExpandedInline) {
  ir::ProgramBuilder b("proc_stg");
  Expr myid = b.get_rank("myid");
  b.get_size("P");
  b.decl_array("A", {I(8)});
  b.procedure("talk", [&] {
    b.if_then(sym::gt(myid, I(0)),
              [&] { b.send("A", myid - 1, I(4), I(0), 1); });
  });
  b.call("talk");
  b.call("talk");
  Stg stg = synthesize_stg(b.take());
  // The procedure body appears once per call site.
  EXPECT_EQ(stg.count(StgNodeKind::kComm), 2u);
}

TEST(Stg, DotExportContainsTheInterestingPieces) {
  Stg stg = synthesize_stg(make_sample_program());
  const std::string dot = stg.to_dot();
  EXPECT_NE(dot.find("digraph stg"), std::string::npos);
  EXPECT_NE(dot.find("COMPUTE work"), std::string::npos);
  EXPECT_NE(dot.find("q = myid - 1"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("DO t"), std::string::npos);
}

TEST(Stg, SummaryListsTasksAndMappings) {
  Stg stg = synthesize_stg(make_sample_program());
  const std::string s = stg.summary();
  EXPECT_NE(s.find("task work"), std::string::npos);
  EXPECT_NE(s.find("comm tag 4"), std::string::npos);
  EXPECT_NE(s.find("{[p] : 0 <= p < P"), std::string::npos);
}

}  // namespace
}  // namespace stgsim::core
