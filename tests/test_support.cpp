// Unit tests for the support layer: memory tracking, tables, virtual
// time, RNG, stats, checks — and the calibration file round trip.
#include <gtest/gtest.h>

#include <cstdio>

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <random>
#include <utility>
#include <vector>

#include "core/calibration.hpp"
#include "support/check.hpp"
#include "support/indexed_heap.hpp"
#include "support/memtrack.hpp"
#include "support/numparse.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/vtime.hpp"

namespace stgsim {
namespace {

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

TEST(Check, PassingConditionIsSilent) {
  STGSIM_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(Check, FailingConditionThrowsWithContext) {
  try {
    STGSIM_CHECK_EQ(2 + 2, 5) << "math is hard";
    FAIL();
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is hard"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Check, FailurePrintsToStderrBeforeThrowing) {
  testing::internal::CaptureStderr();
  try {
    STGSIM_CHECK(false) << "visible before unwind";
    FAIL();
  } catch (const CheckError&) {
  }
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("CHECK failed"), std::string::npos);
  EXPECT_NE(err.find("visible before unwind"), std::string::npos);
  EXPECT_NE(err.find("test_support.cpp"), std::string::npos);
}

TEST(Check, FailureDuringUnwindingIsLoggedNotFatal) {
  // A check that trips in a destructor while another exception is in
  // flight must not call std::terminate (throwing from a destructor
  // during unwinding would); it logs and lets the original propagate.
  struct TrapInDtor {
    ~TrapInDtor() { STGSIM_CHECK(false) << "dtor check"; }
  };
  testing::internal::CaptureStderr();
  try {
    TrapInDtor trap;
    throw std::runtime_error("original");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "original");
  }
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("dtor check"), std::string::npos);
  EXPECT_NE(err.find("suppressed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Memory tracking
// ---------------------------------------------------------------------------

TEST(MemTrack, CurrentAndPeakFollowAllocations) {
  MemoryTracker t;
  t.add(100);
  t.add(50);
  EXPECT_EQ(t.current_bytes(), 150u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.remove(100);
  EXPECT_EQ(t.current_bytes(), 50u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.add(10);
  EXPECT_EQ(t.peak_bytes(), 150u);
}

TEST(MemTrack, CapRejectsAndRollsBack) {
  MemoryTracker t(100);
  t.add(80);
  EXPECT_THROW(t.add(30), MemoryCapExceeded);
  EXPECT_EQ(t.current_bytes(), 80u);  // failed add rolled back
  t.add(20);                          // exactly at the cap is fine
  EXPECT_EQ(t.current_bytes(), 100u);
}

TEST(MemTrack, CapErrorCarriesNumbers) {
  MemoryTracker t(64);
  try {
    t.add(100);
    FAIL();
  } catch (const MemoryCapExceeded& e) {
    EXPECT_EQ(e.requested_bytes, 100u);
    EXPECT_EQ(e.cap_bytes, 64u);
  }
}

TEST(MemTrack, TrackedBufferChargesForItsLifetime) {
  MemoryTracker t;
  {
    TrackedBuffer buf(&t, 4096);
    EXPECT_EQ(t.current_bytes(), 4096u);
    EXPECT_TRUE(buf.valid());
    // Zero-initialized.
    EXPECT_EQ(buf.data()[0], 0);
    EXPECT_EQ(buf.data()[4095], 0);
  }
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 4096u);
}

TEST(MemTrack, TrackedBufferMoveTransfersOwnership) {
  MemoryTracker t;
  TrackedBuffer a(&t, 128);
  TrackedBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(t.current_bytes(), 128u);
  TrackedBuffer c(&t, 64);
  c = std::move(b);
  EXPECT_EQ(t.current_bytes(), 128u);  // the 64B buffer was released
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

TEST(Table, AsciiAlignsColumns) {
  TablePrinter t({"a", "long header"});
  t.add_row({"1", "x"});
  t.add_row({"22", "yy"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| a  | long header |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | yy          |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Table, CsvEscapesSpecials) {
  TablePrinter t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt_int(-42), "-42");
  EXPECT_EQ(TablePrinter::fmt_bytes(512), "512 B");
  EXPECT_EQ(TablePrinter::fmt_bytes(2048), "2.00 KB");
  EXPECT_EQ(TablePrinter::fmt_bytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(TablePrinter::fmt_percent(0.123, 1), "12.3%");
}

// ---------------------------------------------------------------------------
// Virtual time
// ---------------------------------------------------------------------------

TEST(VTimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(vtime_from_us(1), 1000);
  EXPECT_EQ(vtime_from_ms(1), 1000000);
  EXPECT_EQ(vtime_from_sec(1.0), 1000000000);
  EXPECT_DOUBLE_EQ(vtime_to_sec(vtime_from_sec(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(vtime_to_us(vtime_from_us(7.0)), 7.0);
}

TEST(VTimeTest, FormattingPicksUnits) {
  EXPECT_EQ(vtime_to_string(500), "500 ns");
  EXPECT_EQ(vtime_to_string(vtime_from_us(1.5)), "1.500 us");
  EXPECT_EQ(vtime_to_string(vtime_from_ms(2)), "2.000 ms");
  EXPECT_EQ(vtime_to_string(vtime_from_sec(3)), "3.000 s");
  EXPECT_EQ(vtime_to_string(kVTimeNever), "never");
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(RngTest, NextInIsInclusiveAndCoversRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianHasReasonableMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(Stats, RelativeErrors) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.10);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), -0.10);
  EXPECT_DOUBLE_EQ(abs_relative_error(90.0, 100.0), 0.10);
  EXPECT_THROW(relative_error(1.0, 0.0), CheckError);
}

TEST(Stats, MeanMaxGeomean) {
  std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 16.0);
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, RunningStatsTracksStream) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  for (double x : {3.0, 1.0, 2.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 3u);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.0);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 3.0);
}

// ---------------------------------------------------------------------------
// Calibration files
// ---------------------------------------------------------------------------

TEST(Calibration, SaveLoadRoundTripsAtFullPrecision) {
  const std::string path = "/tmp/stgsim_params_test.txt";
  std::map<std::string, double> params{
      {"w_a", 1.2345678901234567e-8}, {"w_b", 3.25}, {"w_c", 0.0}};
  core::save_params(path, params);
  const auto loaded = core::load_params(path);
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.at("w_a"), params.at("w_a"));
  EXPECT_DOUBLE_EQ(loaded.at("w_b"), 3.25);
  std::remove(path.c_str());
}

TEST(Calibration, MissingFileThrows) {
  EXPECT_THROW(core::load_params("/nonexistent/params.txt"), CheckError);
}

// ---------------------------------------------------------------------------

TEST(IndexedMinHeap, PopsInKeyThenIdOrder) {
  IndexedMinHeap<int> h(8);
  h.push(3, 50);
  h.push(1, 10);
  h.push(6, 10);  // same key as id 1: id tie-break, 1 first
  h.push(0, 99);
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.top(), (std::pair<int, int>{10, 1}));
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 6);
  EXPECT_EQ(h.pop(), 3);
  EXPECT_EQ(h.pop(), 0);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedMinHeap, UpdateMovesBothDirections) {
  IndexedMinHeap<int> h(4);
  for (int i = 0; i < 4; ++i) h.push(i, 10 * (i + 1));
  h.update(3, 5);    // decrease-key: now the minimum
  h.update(0, 100);  // increase-key: now the maximum
  EXPECT_EQ(h.pop(), 3);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 0);
}

TEST(IndexedMinHeap, EraseAndReinsert) {
  IndexedMinHeap<int> h(4);
  for (int i = 0; i < 4; ++i) h.push(i, i);
  h.erase(0);
  EXPECT_FALSE(h.contains(0));
  EXPECT_EQ(h.pop(), 1);
  h.push(0, 2);  // same key as id 2: id tie-break
  EXPECT_EQ(h.pop(), 0);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 3);
}

// The heap must agree with std::priority_queue (the seed's scheduler
// structure) on every pop across a randomized workload with duplicates
// keys and interleaved re-pushes — this IS the determinism argument.
TEST(IndexedMinHeap, MatchesPriorityQueueUnderRandomWorkload) {
  using KI = std::pair<long long, int>;
  std::mt19937 rng(20260807);
  IndexedMinHeap<long long> h(64);
  std::priority_queue<KI, std::vector<KI>, std::greater<KI>> ref;
  std::vector<bool> queued(64, false);
  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng() % 3);
    if (op != 0 && !ref.empty()) {
      auto [k, id] = ref.top();
      ref.pop();
      ASSERT_EQ(h.top(), (std::pair<long long, int>{k, id})) << "step " << step;
      ASSERT_EQ(h.pop(), id);
      queued[static_cast<std::size_t>(id)] = false;
    } else {
      const int id = static_cast<int>(rng() % 64);
      if (queued[static_cast<std::size_t>(id)]) continue;
      const long long key = static_cast<long long>(rng() % 50);
      h.push(id, key);
      ref.emplace(key, id);
      queued[static_cast<std::size_t>(id)] = true;
    }
  }
  while (!ref.empty()) {
    ASSERT_EQ(h.pop(), ref.top().second);
    ref.pop();
  }
  EXPECT_TRUE(h.empty());
}

// ---------------------------------------------------------------------------
// Locale-independent number parsing (numparse.hpp)
// ---------------------------------------------------------------------------

TEST(NumParse, ParsesIntegersIncludingSignsAndRejectsJunk) {
  using support::ParseNumStatus;
  long long v = 0;
  EXPECT_EQ(support::parse_i64("42", &v), ParseNumStatus::kOk);
  EXPECT_EQ(v, 42);
  EXPECT_EQ(support::parse_i64("-7", &v), ParseNumStatus::kOk);
  EXPECT_EQ(v, -7);
  // from_chars itself rejects a leading '+'; the helper accepts it.
  EXPECT_EQ(support::parse_i64("+8", &v), ParseNumStatus::kOk);
  EXPECT_EQ(v, 8);
  for (const char* bad : {"", "+", "12x", "1.5", " 3", "3 ", "0x10"}) {
    EXPECT_EQ(support::parse_i64(bad, &v), ParseNumStatus::kBadFormat)
        << bad;
  }
}

TEST(NumParse, IntegerOverflowIsAStructuredStatusNotUB) {
  long long v = 0;
  EXPECT_EQ(support::parse_i64("99999999999999999999", &v),
            support::ParseNumStatus::kOutOfRange);
  EXPECT_EQ(support::parse_i64("-99999999999999999999", &v),
            support::ParseNumStatus::kOutOfRange);
}

TEST(NumParse, ParsesDoublesAndRejectsNonFiniteSpellings) {
  using support::ParseNumStatus;
  double d = 0.0;
  EXPECT_EQ(support::parse_f64("3.25", &d), ParseNumStatus::kOk);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(support::parse_f64("-1e3", &d), ParseNumStatus::kOk);
  EXPECT_DOUBLE_EQ(d, -1000.0);
  EXPECT_EQ(support::parse_f64("+2.5", &d), ParseNumStatus::kOk);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(support::parse_f64("1e999", &d), ParseNumStatus::kOutOfRange);
  for (const char* nf : {"inf", "-inf", "Infinity", "nan", "NaN", "-NAN"}) {
    EXPECT_EQ(support::parse_f64(nf, &d), ParseNumStatus::kNotFinite) << nf;
  }
  for (const char* bad : {"", "+", "2,5", "1e", "12 "}) {
    EXPECT_EQ(support::parse_f64(bad, &d), ParseNumStatus::kBadFormat)
        << bad;
  }
}

// ---------------------------------------------------------------------------
// Bench ratio math (stats.hpp): degenerate runs must stay finite
// ---------------------------------------------------------------------------

TEST(Stats, SafeRateIsFiniteOnDegenerateDurations) {
  // A sub-clock-tick run reports 0.0 seconds; the rate must clamp, not
  // divide by zero (the JSON writer rejects non-finite numbers).
  EXPECT_TRUE(std::isfinite(safe_rate(1e6, 0.0)));
  EXPECT_TRUE(std::isfinite(safe_rate(0.0, 0.0)));
  EXPECT_TRUE(std::isfinite(safe_rate(1e6, -1.0)));
  EXPECT_DOUBLE_EQ(safe_rate(500.0, 2.0), 250.0);
}

TEST(Stats, SafeSpeedupIsFiniteOnDegenerateBaselines) {
  EXPECT_DOUBLE_EQ(safe_speedup(2.0, 1.0), 2.0);
  // Zero/negative/NaN durations on either side read as "no data" (0),
  // never inf or nan.
  EXPECT_DOUBLE_EQ(safe_speedup(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_speedup(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_speedup(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_speedup(-1.0, 2.0), 0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(safe_speedup(nan, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_speedup(2.0, nan), 0.0);
}

}  // namespace
}  // namespace stgsim
