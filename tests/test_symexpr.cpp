// Unit tests for the symbolic expression library.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "symexpr/expr.hpp"

namespace stgsim::sym {
namespace {

Expr V(const std::string& n) { return Expr::var(n); }
Expr I(std::int64_t v) { return Expr::integer(v); }

TEST(SymExpr, ConstantsEvaluate) {
  MapEnv env;
  EXPECT_EQ(I(42).eval_int(env), 42);
  EXPECT_DOUBLE_EQ(Expr::real(2.5).eval_real(env), 2.5);
}

TEST(SymExpr, VariableLookup) {
  MapEnv env;
  env.set("N", Value(std::int64_t{7}));
  EXPECT_EQ(V("N").eval_int(env), 7);
}

TEST(SymExpr, UnboundVariableThrows) {
  MapEnv env;
  EXPECT_THROW(V("missing").eval(env), EvalError);
}

TEST(SymExpr, IntegerArithmeticStaysExact) {
  MapEnv env;
  Expr e = (I(7) + I(5)) * I(3) - I(4);
  Value v = e.eval(env);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 32);
}

TEST(SymExpr, MixedArithmeticPromotesToReal) {
  MapEnv env;
  Value v = (I(1) + Expr::real(0.5)).eval(env);
  EXPECT_FALSE(v.is_int());
  EXPECT_DOUBLE_EQ(v.as_real(), 1.5);
}

TEST(SymExpr, TruncatingIntegerDivision) {
  MapEnv env;
  EXPECT_EQ(idiv(I(7), I(2)).eval_int(env), 3);
  EXPECT_EQ(idiv(I(-7), I(2)).eval_int(env), -3);  // C semantics
  EXPECT_EQ(imod(I(7), I(3)).eval_int(env), 1);
}

TEST(SymExpr, CeilDiv) {
  MapEnv env;
  EXPECT_EQ(ceil_div(I(7), I(2)).eval_int(env), 4);
  EXPECT_EQ(ceil_div(I(6), I(2)).eval_int(env), 3);
  EXPECT_EQ(ceil_div(I(0), I(5)).eval_int(env), 0);
  EXPECT_EQ(ceil_div(I(1), I(5)).eval_int(env), 1);
}

TEST(SymExpr, DivisionByZeroThrows) {
  MapEnv env;
  EXPECT_THROW((I(1) / I(0)).eval(env), EvalError);
  EXPECT_THROW(idiv(I(1), I(0)).eval(env), EvalError);
  EXPECT_THROW(imod(I(1), I(0)).eval(env), EvalError);
}

TEST(SymExpr, MinMax) {
  MapEnv env;
  EXPECT_EQ(min(I(3), I(8)).eval_int(env), 3);
  EXPECT_EQ(max(I(3), I(8)).eval_int(env), 8);
}

TEST(SymExpr, Comparisons) {
  MapEnv env;
  EXPECT_TRUE(lt(I(1), I(2)).eval(env).as_bool());
  EXPECT_FALSE(gt(I(1), I(2)).eval(env).as_bool());
  EXPECT_TRUE(le(I(2), I(2)).eval(env).as_bool());
  EXPECT_TRUE(ge(I(2), I(2)).eval(env).as_bool());
  EXPECT_TRUE(eq(I(2), I(2)).eval(env).as_bool());
  EXPECT_TRUE(ne(I(2), I(3)).eval(env).as_bool());
}

TEST(SymExpr, LogicalOps) {
  MapEnv env;
  EXPECT_TRUE(logical_and(I(1), I(1)).eval(env).as_bool());
  EXPECT_FALSE(logical_and(I(1), I(0)).eval(env).as_bool());
  EXPECT_TRUE(logical_or(I(0), I(1)).eval(env).as_bool());
  EXPECT_TRUE(logical_not(I(0)).eval(env).as_bool());
}

TEST(SymExpr, SelectPicksBranch) {
  MapEnv env;
  env.set("x", Value(std::int64_t{5}));
  Expr e = select(gt(V("x"), I(3)), I(100), I(200));
  EXPECT_EQ(e.eval_int(env), 100);
  env.set("x", Value(std::int64_t{1}));
  EXPECT_EQ(e.eval_int(env), 200);
}

TEST(SymExpr, SumEvaluatesInclusive) {
  MapEnv env;
  // sum_{i=1..4} i = 10
  EXPECT_EQ(sum("i", I(1), I(4), V("i")).eval_int(env), 10);
  // empty when hi < lo
  EXPECT_EQ(sum("i", I(3), I(2), V("i")).eval_int(env), 0);
}

TEST(SymExpr, SumShadowsOuterVariable) {
  MapEnv env;
  env.set("i", Value(std::int64_t{100}));
  EXPECT_EQ(sum("i", I(1), I(3), V("i")).eval_int(env), 6);
}

TEST(SymExpr, FreeVarsExcludeSumBoundVar) {
  Expr e = sum("i", I(1), V("N"), V("i") * V("w"));
  auto vars = e.free_vars();
  EXPECT_TRUE(vars.contains("N"));
  EXPECT_TRUE(vars.contains("w"));
  EXPECT_FALSE(vars.contains("i"));
}

TEST(SymExpr, SubstituteReplacesFreeVars) {
  MapEnv env;
  Expr e = V("x") + V("y");
  Expr s = e.substitute({{"x", I(10)}, {"y", I(20)}});
  EXPECT_EQ(s.eval_int(env), 30);
}

TEST(SymExpr, SubstituteRespectsSumBinding) {
  MapEnv env;
  Expr e = sum("i", I(1), I(3), V("i"));
  Expr s = e.substitute({{"i", I(99)}});
  EXPECT_EQ(s.eval_int(env), 6);  // bound i untouched
}

TEST(SymExpr, SimplifyFoldsConstants) {
  Expr e = (I(2) + I(3)) * I(4);
  auto c = e.simplified().constant_value();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->as_int(), 20);
}

TEST(SymExpr, SimplifyIdentities) {
  Expr x = V("x");
  EXPECT_TRUE((x + I(0)).simplified().structurally_equal(x));
  EXPECT_TRUE((x * I(1)).simplified().structurally_equal(x));
  EXPECT_TRUE((x * I(0)).simplified().is_constant());
  EXPECT_TRUE((I(0) + x).simplified().structurally_equal(x));
  EXPECT_TRUE((x - I(0)).simplified().structurally_equal(x));
}

TEST(SymExpr, SimplifyConstantSelect) {
  Expr e = select(I(1), V("a"), V("b"));
  EXPECT_TRUE(e.simplified().structurally_equal(V("a")));
}

TEST(SymExpr, ToStringRoundTripReadable) {
  Expr e = (V("N") - I(2)) * (min(V("N"), V("b") + I(1)) - max(I(2), V("lo")));
  const std::string s = e.to_string();
  EXPECT_NE(s.find("N - 2"), std::string::npos);
  EXPECT_NE(s.find("min("), std::string::npos);
}

TEST(SymExpr, StructuralEquality) {
  EXPECT_TRUE((V("a") + I(1)).structurally_equal(V("a") + I(1)));
  EXPECT_FALSE((V("a") + I(1)).structurally_equal(V("a") + I(2)));
  EXPECT_FALSE((V("a") + I(1)).structurally_equal(I(1) + V("a")));
}

TEST(SymExpr, DecomposeAffineBasic) {
  auto d = decompose_affine(I(3) * V("i") + V("N"), "i");
  ASSERT_TRUE(d.has_value());
  MapEnv env;
  env.set("N", Value(std::int64_t{5}));
  EXPECT_EQ(d->first.eval_int(env), 3);
  EXPECT_EQ(d->second.eval_int(env), 5);
}

TEST(SymExpr, DecomposeAffineRejectsQuadratic) {
  EXPECT_FALSE(decompose_affine(V("i") * V("i"), "i").has_value());
}

TEST(SymExpr, DecomposeAffineConstInVar) {
  auto d = decompose_affine(V("N") * I(7), "i");
  ASSERT_TRUE(d.has_value());
  MapEnv env;
  EXPECT_EQ(d->first.eval_int(env), 0);
}

TEST(SymExpr, ClosedFormSumMatchesDirectSum) {
  MapEnv env;
  env.set("N", Value(std::int64_t{11}));
  env.set("c", Value(std::int64_t{4}));
  Expr body = I(3) * V("i") + V("c");
  auto closed = closed_form_sum("i", I(2), V("N"), body);
  ASSERT_TRUE(closed.has_value());
  const double expect = sum("i", I(2), V("N"), body).eval_real(env);
  EXPECT_NEAR(closed->eval_real(env), expect, 1e-9);
}

TEST(SymExpr, ClosedFormSumEmptyRange) {
  MapEnv env;
  auto closed = closed_form_sum("i", I(5), I(2), V("i"));
  ASSERT_TRUE(closed.has_value());
  EXPECT_DOUBLE_EQ(closed->eval_real(env), 0.0);
}

TEST(SymExpr, ClosedFormSumLoopInvariantBody) {
  MapEnv env;
  env.set("N", Value(std::int64_t{10}));
  auto closed = closed_form_sum("i", I(1), V("N"), V("N") * I(2));
  ASSERT_TRUE(closed.has_value());
  EXPECT_NEAR(closed->eval_real(env), 200.0, 1e-9);
}

TEST(SymExpr, ClosedFormSumRejectsNonAffine) {
  EXPECT_FALSE(closed_form_sum("i", I(1), I(4), V("i") * V("i")).has_value());
}

// Property sweep: closed form == direct evaluation over many bounds.
class ClosedFormSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ClosedFormSweep, AgreesWithDirectEvaluation) {
  const auto [lo, hi] = GetParam();
  MapEnv env;
  env.set("a", Value(std::int64_t{3}));
  Expr body = V("a") * V("i") + I(7);
  auto closed = closed_form_sum("i", I(lo), I(hi), body);
  ASSERT_TRUE(closed.has_value());
  EXPECT_NEAR(closed->eval_real(env),
              sum("i", I(lo), I(hi), body).eval_real(env), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, ClosedFormSweep,
    ::testing::Values(std::pair{0, 0}, std::pair{0, 1}, std::pair{1, 100},
                      std::pair{-5, 5}, std::pair{7, 3}, std::pair{-10, -2},
                      std::pair{50, 49}, std::pair{1, 1}));

TEST(SymExpr, ValueIntegerCheckOnRealThrows) {
  Value v(2.5);
  EXPECT_THROW(v.as_int(), CheckError);
  Value w(2.0);
  EXPECT_EQ(w.as_int(), 2);
}

// ---------------------------------------------------------------------------
// Property suite: random expressions
// ---------------------------------------------------------------------------

/// Random expression generator over a fixed set of positive variables.
/// Divisor positions are guarded by max(..., 1) so evaluation never hits a
/// domain error.
class ExprGen {
 public:
  explicit ExprGen(std::uint64_t seed) : rng_(seed) {}

  Expr gen(int depth) {
    if (depth == 0 || rng_.next_below(4) == 0) {
      switch (rng_.next_below(3)) {
        case 0: return I(rng_.next_in(0, 9));
        case 1: return Expr::real(static_cast<double>(rng_.next_in(0, 20)) / 4.0);
        default: return V(kVars[rng_.next_below(3)]);
      }
    }
    Expr a = gen(depth - 1);
    Expr b = gen(depth - 1);
    switch (rng_.next_below(10)) {
      case 0: return a + b;
      case 1: return a - b;
      case 2: return a * b;
      case 3: return min(a, b);
      case 4: return max(a, b);
      case 5: return select(lt(a, b), a, b);
      case 6: return select(ge(a, b), a + I(1), b);
      case 7: return -a;
      case 8: return a + b * I(2);
      default: return max(a, I(0)) + max(b, I(0));
    }
  }

  sym::MapEnv random_env() {
    sym::MapEnv env;
    for (const char* v : kVars) {
      env.set(v, Value(rng_.next_in(1, 50)));
    }
    return env;
  }

  static constexpr const char* kVars[3] = {"x", "y", "z"};

 private:
  stgsim::Rng rng_;
};

class RandomExprs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomExprs, SimplifyPreservesValue) {
  ExprGen gen(GetParam());
  for (int i = 0; i < 50; ++i) {
    Expr e = gen.gen(4);
    Expr s = e.simplified();
    for (int j = 0; j < 4; ++j) {
      auto env = gen.random_env();
      EXPECT_NEAR(e.eval_real(env), s.eval_real(env), 1e-9)
          << e.to_string() << "  vs  " << s.to_string();
    }
  }
}

TEST_P(RandomExprs, SubstituteEqualsEnvironmentBinding) {
  ExprGen gen(GetParam());
  for (int i = 0; i < 30; ++i) {
    Expr e = gen.gen(3);
    auto env = gen.random_env();
    std::map<std::string, Expr> repl;
    for (const char* v : ExprGen::kVars) {
      repl.emplace(v, Expr::constant(*env.lookup(v)));
    }
    Expr closed = e.substitute(repl);
    EXPECT_TRUE(closed.free_vars().empty()) << closed.to_string();
    sym::MapEnv empty;
    EXPECT_NEAR(closed.eval_real(empty), e.eval_real(env), 1e-9)
        << e.to_string();
  }
}

TEST_P(RandomExprs, ToStringNeverEmptyAndStable) {
  ExprGen gen(GetParam());
  for (int i = 0; i < 30; ++i) {
    Expr e = gen.gen(3);
    const std::string s1 = e.to_string();
    EXPECT_FALSE(s1.empty());
    EXPECT_EQ(s1, e.to_string());
  }
}

TEST_P(RandomExprs, SumOverRandomBodyMatchesManualLoop) {
  ExprGen gen(GetParam());
  for (int i = 0; i < 10; ++i) {
    Expr body = gen.gen(2).substitute({{"z", V("i")}});
    auto env = gen.random_env();
    const std::int64_t lo = 1, hi = 7;
    double manual = 0.0;
    for (std::int64_t k = lo; k <= hi; ++k) {
      sym::MapEnv inner = env;
      inner.set("i", Value(k));
      manual += body.eval_real(inner);
    }
    EXPECT_NEAR(sum("i", I(lo), I(hi), body).eval_real(env), manual, 1e-9)
        << body.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprs,
                         ::testing::Range<std::uint64_t>(100, 112));

}  // namespace
}  // namespace stgsim::sym
