// Integration guard: the paper's headline claims, asserted as invariants
// on scaled-down configurations. If a model or compiler change pushes the
// analytical simulator out of the paper's accuracy envelope, or destroys
// the memory reduction, these tests fail.
#include <gtest/gtest.h>

#include "apps/nas_sp.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "core/compiler.hpp"
#include "harness/runner.hpp"
#include "support/stats.hpp"

namespace stgsim {
namespace {

struct Band {
  double max_abs_error = 0.17;  // the paper's "at most 17%"
};

struct TripleResult {
  double measured_s = 0;
  double am_s = 0;
  std::size_t de_bytes = 0;
  std::size_t am_bytes = 0;
};

TripleResult run_triple(const ir::Program& prog,
                        const std::map<std::string, double>& params,
                        int procs, const harness::MachineSpec& machine) {
  core::CompileResult compiled = core::compile(prog);
  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.machine = machine;

  TripleResult r;
  cfg.mode = harness::Mode::kMeasured;
  auto measured = harness::run_program(prog, cfg);
  r.measured_s = measured.predicted_seconds();

  cfg.mode = harness::Mode::kDirectExec;
  r.de_bytes = harness::run_program(prog, cfg).peak_target_bytes;

  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  auto am = harness::run_program(compiled.simplified.program, cfg);
  r.am_s = am.predicted_seconds();
  r.am_bytes = am.peak_target_bytes;
  return r;
}

class ValidationBand
    : public ::testing::TestWithParam<int> {};  // process count

TEST_P(ValidationBand, TomcatvStaysInsideThePaperEnvelope) {
  const int procs = GetParam();
  const auto machine = harness::ibm_sp_machine();
  apps::TomcatvConfig cfg;
  cfg.n = 512;
  cfg.iterations = 3;
  ir::Program prog = apps::make_tomcatv(cfg);
  core::CompileResult compiled = core::compile(prog);
  const auto params = harness::calibrate(compiled.timer_program, 16, machine,
                                         compiled.simplified.params);

  auto r = run_triple(prog, params, procs, machine);
  EXPECT_LT(abs_relative_error(r.am_s, r.measured_s), Band{}.max_abs_error)
      << "AM " << r.am_s << " vs measured " << r.measured_s << " at "
      << procs << " procs";
  EXPECT_GT(r.de_bytes, 20 * r.am_bytes)
      << "memory reduction collapsed: DE " << r.de_bytes << " vs AM "
      << r.am_bytes;
}

TEST_P(ValidationBand, Sweep3DStaysInsideThePaperEnvelope) {
  const int procs = GetParam();
  const auto machine = harness::ibm_sp_machine();
  auto make = [](int nprocs) {
    apps::Sweep3DConfig cfg;
    apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
    cfg.it = (48 + cfg.npe_i - 1) / cfg.npe_i;
    cfg.jt = (48 + cfg.npe_j - 1) / cfg.npe_j;
    cfg.kt = 48;
    cfg.kb = 12;
    cfg.mm = 6;
    cfg.mmi = 3;
    return apps::make_sweep3d(cfg);
  };
  ir::Program calib_prog = make(16);
  core::CompileResult calib = core::compile(calib_prog);
  const auto params = harness::calibrate(calib.timer_program, 16, machine,
                                         calib.simplified.params);

  ir::Program prog = make(procs);
  auto r = run_triple(prog, params, procs, machine);
  EXPECT_LT(abs_relative_error(r.am_s, r.measured_s), Band{}.max_abs_error)
      << "AM " << r.am_s << " vs measured " << r.measured_s;
}

TEST_P(ValidationBand, NasSpClassCWithClassAParamsStaysInsideEnvelope) {
  const int procs = GetParam();
  if (procs == 8) GTEST_SKIP() << "SP needs a square process count";
  const auto machine = harness::ibm_sp_machine();
  int q = 1;
  while ((q + 1) * (q + 1) <= procs) ++q;

  ir::Program class_a = apps::make_nas_sp(apps::sp_class('A', 4, 1));
  core::CompileResult calib = core::compile(class_a);
  const auto params = harness::calibrate(calib.timer_program, 16, machine,
                                         calib.simplified.params);

  ir::Program class_c = apps::make_nas_sp(apps::sp_class('C', q, 1));
  auto r = run_triple(class_c, params, procs, machine);
  EXPECT_LT(abs_relative_error(r.am_s, r.measured_s), Band{}.max_abs_error)
      << "AM " << r.am_s << " vs measured " << r.measured_s;
}

INSTANTIATE_TEST_SUITE_P(Procs, ValidationBand, ::testing::Values(4, 8, 16));

}  // namespace
}  // namespace stgsim
