// Shared helpers for STGSim tests.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "harness/runner.hpp"
#include "ir/interp.hpp"
#include "smpi/smpi.hpp"

namespace stgsim::testutil {

struct TracedRun {
  simk::RunResult result;
  std::vector<smpi::RankStats> rank_stats;
  smpi::CommTrace trace;
};

/// Runs `prog` on `nprocs` ranks under a clean (DE-style) machine model,
/// recording the user-level communication trace and per-rank stats.
inline TracedRun run_traced(const ir::Program& prog, int nprocs,
                            const harness::MachineSpec& machine,
                            const std::map<std::string, double>& params = {}) {
  smpi::CommTrace trace(nprocs);
  smpi::World::Options wopts;
  wopts.net = machine.net;
  wopts.compute = machine.compute;
  wopts.trace = &trace;
  smpi::World world(wopts, nprocs);
  for (const auto& [k, v] : params) world.set_param(k, v);

  simk::EngineConfig ec;
  ec.num_processes = nprocs;
  simk::Engine engine(ec);
  engine.set_body([&](simk::Process& p) {
    smpi::Comm comm(world, p);
    ir::execute(prog, comm);
  });
  simk::RunResult rr = engine.run();
  return TracedRun{std::move(rr), world.all_stats(), std::move(trace)};
}

/// Compiles `prog`, calibrates at `nprocs`, runs original and simplified,
/// and returns the first trace divergence after stripping the simplified
/// program's read_param prologue (empty string = equivalent, the paper's
/// §3 correctness contract).
inline std::string am_trace_divergence(const ir::Program& prog, int nprocs,
                                       const harness::MachineSpec& machine) {
  core::CompileResult compiled = core::compile(prog);
  const auto params = harness::calibrate(compiled.timer_program, nprocs,
                                         machine, compiled.simplified.params);

  TracedRun original = run_traced(prog, nprocs, machine);
  TracedRun simplified =
      run_traced(compiled.simplified.program, nprocs, machine, params);

  // Strip the w_i prologue (one bcast per parameter on every rank).
  smpi::CommTrace stripped(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    const auto& ops = simplified.trace.per_rank()[static_cast<std::size_t>(r)];
    if (ops.size() < params.size()) return "prologue missing";
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (ops[i].kind != smpi::CommEvent::Kind::kBcast) {
        return "prologue op is not a bcast";
      }
    }
    for (std::size_t i = params.size(); i < ops.size(); ++i) {
      stripped.add(r, ops[i]);
    }
  }
  return original.trace.diff(stripped);
}

}  // namespace stgsim::testutil
